package bench

// Fleet failure-domain tests: a backend crash — mid-stream, mid-splice,
// over and over — may cost sessions latency or availability, never verdict
// integrity. The deterministic test kills an image's ring owner at an
// exact byte offset of the client's stream; the soak does it continuously
// under concurrent load. Both compare every completed verdict against a
// fault-free control, and the soak additionally proves the fleet leaks
// nothing: EPC ledgers balance and goroutines settle once it ends.

import (
	"crypto/sha256"
	"encoding/hex"
	"net"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"engarde"
	"engarde/internal/cluster"
	"engarde/internal/toolchain"
)

// chaosSoakDuration mirrors the gateway chaos soak's knob: 2s in normal
// runs, ENGARDE_SOAK_SECONDS in CI's fleet-chaos-soak job.
func chaosSoakDuration() time.Duration {
	if v := os.Getenv("ENGARDE_SOAK_SECONDS"); v != "" {
		if secs, err := strconv.Atoi(v); err == nil && secs > 0 {
			return time.Duration(secs) * time.Second
		}
	}
	return 2 * time.Second
}

func waitFleetGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+8 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutine leak: %d running, baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func chaosImage(t *testing.T, name string, seed int64, funcs int, compliant bool) []byte {
	t.Helper()
	bin, err := toolchain.Build(toolchain.Config{
		Name: name, Seed: seed, NumFuncs: funcs, AvgFuncInsts: 60,
		StackProtector: compliant,
	})
	if err != nil {
		t.Fatal(err)
	}
	return bin.Image
}

// killAfterConn triggers kill once the client has written at least
// threshold bytes into the session — a deterministic "owner crashed
// mid-transfer" point in the stream.
type killAfterConn struct {
	net.Conn
	written   int
	threshold int
	kill      func()
}

func (c *killAfterConn) Write(b []byte) (int, error) {
	n, err := c.Conn.Write(b)
	c.written += n
	if c.written >= c.threshold {
		c.kill()
	}
	return n, err
}

// TestFleetFailoverMidStream is the deterministic failure-domain
// regression test: a client announces its digest, the router splices it to
// the ring owner, and the owner is killed mid-image-transfer. The client's
// session-failover loop must replay the retained image through the router,
// land on the successor, and finish with exactly the fault-free verdict.
func TestFleetFailoverMidStream(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet topology is not short")
	}
	image := chaosImage(t, "midstream", 9001, 60, true)
	const killAt = 4096
	if len(image) < 3*killAt {
		t.Fatalf("image too small (%d bytes) to kill mid-transfer at offset %d", len(image), killAt)
	}

	fleet, err := StartChaosFleet(ChaosFleetConfig{
		Backends:       2,
		CacheEntries:   -1, // every session runs the full pipeline
		HealthInterval: -1, // dial results police health: fully deterministic
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()
	fleet.Client.Route = &engarde.RouteHello{Tenant: "midstream"}

	// Predict the digest's ring owner with the router's own ring geometry.
	sum := sha256.Sum256(image)
	ring := cluster.NewRing(cluster.DefaultVnodes)
	for i := 0; i < 2; i++ {
		ring.Add(fleet.BackendName(i))
	}
	ownerName, ok := ring.Owner(hex.EncodeToString(sum[:]))
	if !ok {
		t.Fatal("ring has no owner")
	}
	owner := 0
	if ownerName == fleet.BackendName(1) {
		owner = 1
	}
	survivor := 1 - owner

	// Fault-free control verdict (routed to the owner, like every
	// announced session for this digest).
	control, err := fleet.Client.ProvisionFailover(
		[]func() (net.Conn, error){fleet.Dial}, image,
		engarde.RetryPolicy{Attempts: 2, Seed: 1})
	if err != nil {
		t.Fatalf("control session: %v", err)
	}
	if !control.Compliant {
		t.Fatalf("control verdict = %+v, want compliant", control)
	}

	// The faulted session: the owner dies once the client is killAt bytes
	// into its stream — mid-transfer, after routing and handshake.
	var killOnce sync.Once
	killDial := func() (net.Conn, error) {
		conn, err := fleet.Dial()
		if err != nil {
			return nil, err
		}
		return &killAfterConn{Conn: conn, threshold: killAt, kill: func() {
			killOnce.Do(func() { fleet.Kill(owner) })
		}}, nil
	}

	var moves int
	v, err := fleet.Client.ProvisionFailover(
		[]func() (net.Conn, error){killDial, fleet.Dial}, image,
		engarde.RetryPolicy{
			Attempts: 4, Seed: 1,
			Sleep: func(time.Duration) {},
			OnFailover: func(from, to int, cause error) {
				moves++
				t.Logf("failover %d->%d: %v", from, to, cause)
			},
		})
	if err != nil {
		t.Fatalf("provision with mid-stream owner death: %v", err)
	}
	if v != control {
		t.Errorf("verdict after failover = %+v, want control %+v", v, control)
	}
	if moves == 0 {
		t.Error("OnFailover never fired — the kill did not interrupt the session")
	}

	// The replayed session must have landed on the survivor.
	if served := fleet.Gateway(survivor).Stats().Served; served == 0 {
		t.Error("survivor served no sessions — failover did not reroute")
	}

	// The owner comes back and the fleet is whole again: a fresh session
	// for the same digest completes wherever the router now sends it.
	if err := fleet.Restart(owner); err != nil {
		t.Fatal(err)
	}
	v2, err := fleet.Client.ProvisionFailover(
		[]func() (net.Conn, error){fleet.Dial, fleet.Dial}, image,
		engarde.RetryPolicy{Attempts: 4, Seed: 2, Sleep: func(time.Duration) {}})
	if err != nil {
		t.Fatalf("provision after restart: %v", err)
	}
	if v2 != control {
		t.Errorf("verdict after restart = %+v, want control %+v", v2, control)
	}
}

// TestFleetChaosSoak crashes and restarts backends continuously under
// concurrent announced load. Invariants: every completed session's verdict
// equals the fault-free control for its image (compliant and non-compliant
// alike), sessions keep completing throughout, and when the music stops
// the fleet shuts down clean — EPC ledgers balance on every backend and
// no goroutine outlives the run. Run with -race; CI's fleet-chaos-soak job
// extends it via ENGARDE_SOAK_SECONDS.
func TestFleetChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet topology is not short")
	}
	baseline := runtime.NumGoroutine()
	good := chaosImage(t, "soak-fleet-good", 9101, 8, true)
	bad := chaosImage(t, "soak-fleet-bad", 9102, 8, false)
	images := [][]byte{good, bad}

	fleet, err := StartChaosFleet(ChaosFleetConfig{
		Backends:         3,
		EnclavePool:      2,
		MaxConcurrent:    4,
		HealthInterval:   20 * time.Millisecond,
		ProbeTimeout:     200 * time.Millisecond,
		MarkdownCooldown: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	fleet.Client.Route = &engarde.RouteHello{Tenant: "chaos"}

	// Fault-free control verdicts, one per image.
	controls := make([]engarde.Verdict, len(images))
	for i, img := range images {
		controls[i], err = fleet.Client.ProvisionFailover(
			[]func() (net.Conn, error){fleet.Dial, fleet.Dial}, img,
			engarde.RetryPolicy{Attempts: 4, Seed: int64(i + 1)})
		if err != nil {
			t.Fatalf("control session %d: %v", i, err)
		}
	}
	if !controls[0].Compliant || controls[1].Compliant {
		t.Fatalf("unexpected control verdicts: %+v", controls)
	}

	deadline := time.Now().Add(chaosSoakDuration())
	var (
		wg         sync.WaitGroup
		completed  atomic.Uint64
		dropped    atomic.Uint64
		mismatches atomic.Uint64
	)
	const numClients = 6
	for c := 0; c < numClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			policy := engarde.RetryPolicy{
				Attempts:  8,
				BaseDelay: time.Millisecond,
				MaxDelay:  20 * time.Millisecond,
				Seed:      int64(c + 1),
			}
			dials := []func() (net.Conn, error){fleet.Dial, fleet.Dial, fleet.Dial}
			for i := 0; time.Now().Before(deadline); i++ {
				which := (c + i) % len(images)
				s0 := time.Now()
				v, err := fleet.Client.ProvisionFailover(dials, images[which], policy)
				if d := time.Since(s0); d > 10*time.Second {
					t.Logf("client %d session %d took %v (err=%v)", c, i, d, err)
				}
				if err != nil {
					// Availability loss: legal under chaos, and accounted.
					dropped.Add(1)
					continue
				}
				completed.Add(1)
				if v != controls[which] {
					mismatches.Add(1)
					t.Errorf("verdict diverged under chaos: image %d got %+v want %+v",
						which, v, controls[which])
				}
			}
		}(c)
	}

	// The chaos loop: one backend at a time crashes mid-whatever and comes
	// back; the dwell times leave the fleet a healthy majority throughout.
	chaosDone := make(chan struct{})
	go func() {
		defer close(chaosDone)
		for i := 0; time.Now().Before(deadline); i++ {
			victim := i % 3
			fleet.Kill(victim)
			time.Sleep(60 * time.Millisecond)
			for fleet.Restart(victim) != nil {
				time.Sleep(10 * time.Millisecond)
			}
			time.Sleep(350 * time.Millisecond)
		}
	}()

	wg.Wait()
	<-chaosDone
	t.Logf("soak: %d completed, %d dropped, %d mismatches",
		completed.Load(), dropped.Load(), mismatches.Load())
	if completed.Load() == 0 {
		t.Error("no session completed under chaos — failover is not working")
	}
	if mismatches.Load() != 0 {
		t.Errorf("%d verdicts diverged — faults must never cost integrity", mismatches.Load())
	}

	if err := fleet.Close(); err != nil {
		t.Errorf("fleet shutdown: %v", err)
	}
	// Every backend's EPC ledger balances: every enclave created across
	// all crashes, failovers, and pool churn was destroyed exactly once.
	for i := 0; i < 3; i++ {
		dev := fleet.Provider(i).Device()
		if free, cap := dev.EPCFree(), dev.EPCCapacity(); free != cap {
			t.Errorf("backend %d EPC ledger unbalanced after shutdown: %d free of %d", i, free, cap)
		}
	}
	waitFleetGoroutines(t, baseline)
}

// TestFleetFailoverLoadPoint exercises the BENCH_9 failover load point at
// a small scale: every session is accounted for, the run survives the
// scripted mid-run crash, and the failover counters are self-consistent.
func TestFleetFailoverLoadPoint(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet topology is not short")
	}
	images, err := DistinctImages(2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunFleetFailover(FleetFailoverConfig{
		Backends: 3,
		Images:   images,
		Sessions: 9,
		Clients:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("failover point: %+v", res)
	if res.Completed+res.Dropped != 9 {
		t.Errorf("completed %d + dropped %d != 9 sessions", res.Completed, res.Dropped)
	}
	if res.Completed == 0 {
		t.Error("no sessions completed across the crash window")
	}
	if res.FailoverLatency != nil && res.ClientFailovers == 0 {
		t.Error("failover latencies recorded without any client failover")
	}
}
