package bench

// ChaosFleet: the failure-domain counterpart of RunFleetLoad. It stands up
// the same router-fronted topology — N gatewayd-shaped backends on real
// loopback TCP, each with its own provider and admin endpoints — but puts
// every backend's listening surface under a faults.ChaosListener so tests
// can crash a backend mid-session (listener gone, connections reset, admin
// endpoint dark) and later restart it on the same addresses with its
// platform key and EPC ledger intact. It is the engine behind the fleet
// chaos soak and the deterministic mid-stream failover regression test.

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"engarde"
	"engarde/internal/cluster"
	"engarde/internal/faults"
	"engarde/internal/gateway"
	"engarde/internal/obs"
	"engarde/internal/obs/fleet"
)

// ChaosFleetConfig configures one killable fleet.
type ChaosFleetConfig struct {
	// Backends is the number of gatewayd backends behind the router.
	// Required.
	Backends int
	// Policies is each backend's policy set; nil means stack-protector.
	Policies *engarde.PolicySet
	// EnclavePool, CacheEntries, MaxConcurrent configure each backend
	// (gateway semantics; zero values take gateway defaults).
	EnclavePool   int
	CacheEntries  int
	MaxConcurrent int
	// DisableStreaming buffers whole images before the pipeline runs.
	DisableStreaming bool
	// HeapPages/ClientPages size each session's enclave; 0 means 1500/512.
	HeapPages   int
	ClientPages int
	// HealthInterval/ProbeTimeout/MarkdownCooldown tune the router's
	// background prober (cluster semantics; HealthInterval 0 takes the
	// cluster default, negative disables).
	HealthInterval   time.Duration
	ProbeTimeout     time.Duration
	MarkdownCooldown time.Duration
}

// chaosBackend is one killable backend. Its session and admin addresses
// are fixed at fleet start and survive restarts, exactly like a daemon
// coming back on its configured ports.
type chaosBackend struct {
	name      string
	addr      string
	adminAddr string
	provider  *engarde.Provider
	gw        *gateway.Gateway
	sink      *obs.Sink
	mux       *http.ServeMux

	chaos    *faults.ChaosListener
	adminSrv *http.Server
	serveErr chan error
	down     bool
}

// ChaosFleet is a running router-fronted fleet whose backends can be
// crashed and restarted mid-run.
type ChaosFleet struct {
	// RouterAddr accepts provisioning sessions.
	RouterAddr string
	// Router exposes fleet-side stats to assertions.
	Router *cluster.Router
	// Client is a template carrying every backend's platform key and the
	// fleet's expected measurement; safe for concurrent use.
	Client *engarde.Client
	// RouterAdminURL serves the router's admin surface (/statsz, /metricsz,
	// /tracez, /fleetz, /debug/pprof/) — the scrape target of the fleet
	// observability hammer test.
	RouterAdminURL string

	cfg        ChaosFleetConfig
	backends   []*chaosBackend
	routerSink *obs.Sink
	routerAgg  *fleet.Aggregator
	adminSrv   *http.Server
	routerErr  chan error
}

// StartChaosFleet brings up the fleet: admin endpoints, backends, router.
// Callers own the fleet and must Close it.
func StartChaosFleet(cfg ChaosFleetConfig) (*ChaosFleet, error) {
	if cfg.Backends <= 0 {
		return nil, fmt.Errorf("bench: ChaosFleetConfig.Backends must be positive")
	}
	if cfg.Policies == nil {
		cfg.Policies = engarde.NewPolicySet(engarde.StackProtectorPolicy())
	}
	if cfg.HeapPages == 0 {
		cfg.HeapPages = 1500
	}
	if cfg.ClientPages == 0 {
		cfg.ClientPages = 512
	}

	f := &ChaosFleet{cfg: cfg, Client: &engarde.Client{}, routerErr: make(chan error, 1)}
	routerBackends := make([]cluster.Backend, cfg.Backends)
	for i := 0; i < cfg.Backends; i++ {
		provider, err := engarde.NewProvider(engarde.ProviderConfig{EPCPages: 32000})
		if err != nil {
			return nil, err
		}
		if i == 0 {
			f.Client.PlatformKey = provider.AttestationPublicKey()
		} else {
			f.Client.PlatformKeys = append(f.Client.PlatformKeys, provider.AttestationPublicKey())
		}
		// An in-memory trace sink per backend makes every backend a full
		// /tracez scrape target, so cross-process trace assertions and the
		// fleet aggregator see the same surface a real gatewayd serves.
		sink, err := obs.NewSink(0, "")
		if err != nil {
			return nil, err
		}
		gw, err := gateway.New(gateway.Config{
			Provider:         provider,
			Policies:         cfg.Policies,
			HeapPages:        cfg.HeapPages,
			ClientPages:      cfg.ClientPages,
			MaxConcurrent:    cfg.MaxConcurrent,
			CacheEntries:     cfg.CacheEntries,
			EnclavePool:      cfg.EnclavePool,
			DisableStreaming: cfg.DisableStreaming,
			FnCacheEntries:   -1,
			TraceSink:        sink,
			// Tight deadlines: a chaos run wants sessions orphaned by a
			// crash reaped in seconds, not the daemon's patient minutes.
			IdleTimeout:   5 * time.Second,
			SessionBudget: 30 * time.Second,
		})
		if err != nil {
			return nil, err
		}
		b := &chaosBackend{
			name:     fmt.Sprintf("b%d", i),
			provider: provider,
			gw:       gw,
			sink:     sink,
			serveErr: make(chan error, 1),
		}
		b.mux = http.NewServeMux()
		b.mux.Handle("/statsz", gw.StatsHandler())
		b.mux.Handle("/metricsz", gw.MetricsHandler())
		b.mux.Handle("/tracez", sink.Handler())
		b.mux.Handle("/healthz", gw.HealthzHandler())
		b.mux.Handle("/readyz", gw.ReadyzHandler())

		adminLn, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		b.adminAddr = adminLn.Addr().String()
		b.adminSrv = &http.Server{Handler: b.mux}
		go func(srv *http.Server, ln net.Listener) { _ = srv.Serve(ln) }(b.adminSrv, adminLn)

		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		b.addr = ln.Addr().String()
		b.chaos = faults.WrapListener(ln)
		go func(b *chaosBackend) { b.serveErr <- b.gw.Serve(context.Background(), b.chaos) }(b)

		f.backends = append(f.backends, b)
		routerBackends[i] = cluster.Backend{
			Name: b.name, Addr: b.addr, AdminURL: "http://" + b.adminAddr,
		}
	}

	routerSink, err := obs.NewSink(0, "")
	if err != nil {
		return nil, err
	}
	f.routerSink = routerSink
	router, err := cluster.NewRouter(cluster.RouterConfig{
		Backends:         routerBackends,
		HealthInterval:   cfg.HealthInterval,
		ProbeTimeout:     cfg.ProbeTimeout,
		MarkdownCooldown: cfg.MarkdownCooldown,
		TraceSink:        routerSink,
	})
	if err != nil {
		return nil, err
	}
	routerLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	f.Router = router
	f.RouterAddr = routerLn.Addr().String()
	go func() { f.routerErr <- router.Serve(context.Background(), routerLn) }()

	// The router's admin surface mirrors engarde-router -stats-addr -pprof:
	// stats, metrics, route traces, the fleet aggregation view, and pprof.
	targets := make([]fleet.Backend, cfg.Backends)
	for i, rb := range routerBackends {
		targets[i] = fleet.Backend{
			Name:       rb.Name,
			MetricsURL: rb.AdminURL + "/metricsz",
			TracesURL:  rb.AdminURL + "/tracez",
		}
	}
	f.routerAgg = fleet.New(fleet.Config{
		Backends: targets,
		Interval: 250 * time.Millisecond, // chaos tests want fresh views, not daemon cadences
		Self:     router.Registry(),
		SelfSink: routerSink,
	})
	adminMux := http.NewServeMux()
	adminMux.Handle("/statsz", router.StatsHandler())
	adminMux.Handle("/metricsz", router.MetricsHandler())
	adminMux.Handle("/tracez", router.TracezHandler())
	adminMux.Handle("/fleetz", f.routerAgg.Handler())
	obs.MountPprof(adminMux)
	adminLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	f.RouterAdminURL = "http://" + adminLn.Addr().String()
	f.adminSrv = &http.Server{Handler: adminMux}
	go func(srv *http.Server, ln net.Listener) { _ = srv.Serve(ln) }(f.adminSrv, adminLn)

	expected, err := engarde.ExpectedMeasurement(engarde.SGXv2, engarde.EnclaveConfig{
		HeapPages: cfg.HeapPages, ClientPages: cfg.ClientPages,
	})
	if err != nil {
		return nil, err
	}
	f.Client.Expected = expected
	return f, nil
}

// Dial opens one session connection to the router.
func (f *ChaosFleet) Dial() (net.Conn, error) {
	return net.Dial("tcp", f.RouterAddr)
}

// BackendName returns backend i's router-side name.
func (f *ChaosFleet) BackendName(i int) string { return f.backends[i].name }

// Gateway returns backend i's gateway for stats assertions.
func (f *ChaosFleet) Gateway(i int) *gateway.Gateway { return f.backends[i].gw }

// Provider returns backend i's provider; its EPC ledger spans restarts.
func (f *ChaosFleet) Provider(i int) *engarde.Provider { return f.backends[i].provider }

// Sink returns backend i's in-memory trace sink (what its /tracez serves).
func (f *ChaosFleet) Sink(i int) *obs.Sink { return f.backends[i].sink }

// RouterSink returns the router's route-trace sink.
func (f *ChaosFleet) RouterSink() *obs.Sink { return f.routerSink }

// AdminURL returns backend i's admin base URL (statsz/metricsz/tracez).
func (f *ChaosFleet) AdminURL(i int) string { return "http://" + f.backends[i].adminAddr }

// Kill crashes backend i: session listener and every in-flight connection
// reset, admin endpoint dark. The gateway object survives (its enclave
// pool, caches, and EPC ledger are host state the next Restart reuses).
func (f *ChaosFleet) Kill(i int) {
	b := f.backends[i]
	if b.down {
		return
	}
	b.down = true
	b.chaos.Kill()
	b.adminSrv.Close()
	<-b.serveErr // the serve loop exits on the dead listener
}

// Restart brings backend i back on its original session and admin
// addresses with the same platform key.
func (f *ChaosFleet) Restart(i int) error {
	b := f.backends[i]
	if !b.down {
		return nil
	}
	ln, err := net.Listen("tcp", b.addr)
	if err != nil {
		return fmt.Errorf("bench: restarting %s: %w", b.name, err)
	}
	b.chaos = faults.WrapListener(ln)
	go func(b *chaosBackend, cl *faults.ChaosListener) {
		b.serveErr <- b.gw.Serve(context.Background(), cl)
	}(b, b.chaos)

	adminLn, err := net.Listen("tcp", b.adminAddr)
	if err != nil {
		ln.Close()
		return fmt.Errorf("bench: restarting %s admin: %w", b.name, err)
	}
	b.adminSrv = &http.Server{Handler: b.mux}
	go func(srv *http.Server, aln net.Listener) { _ = srv.Serve(aln) }(b.adminSrv, adminLn)
	b.down = false
	return nil
}

// Close drains the router and every live backend. Sessions in flight get
// the usual graceful-shutdown treatment; dead backends are left dead.
func (f *ChaosFleet) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	var firstErr error
	keep := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	f.routerAgg.Stop()
	f.adminSrv.Close()
	keep(f.Router.Shutdown(ctx))
	keep(<-f.routerErr)
	for _, b := range f.backends {
		keep(b.gw.Shutdown(ctx))
		if !b.down {
			<-b.serveErr
			b.adminSrv.Close()
		}
	}
	return firstErr
}

// FleetFailoverConfig configures RunFleetFailover.
type FleetFailoverConfig struct {
	// Backends is the fleet size; 0 means 3.
	Backends int
	// Images are provisioned round-robin; all must be compliant under
	// Policies. Required.
	Images [][]byte
	// Sessions is the total session count. Required.
	Sessions int
	// Clients is the number of concurrent client goroutines; 0 means 2.
	Clients int
	// Policies is the policy set; nil means stack-protector.
	Policies *engarde.PolicySet
}

// FleetFailoverResult reports one failover load run: throughput and
// latency with a backend crash in the middle of the run, and how much of
// the fleet's machinery (client-side session failover, router-side
// successor retry) it took to keep sessions completing.
type FleetFailoverResult struct {
	Elapsed        time.Duration
	SessionsPerSec float64
	// Completed/Dropped partition the sessions: dropped sessions exhausted
	// the client's failover budget (an availability cost; any verdict
	// anomaly fails the run instead).
	Completed uint64
	Dropped   uint64
	// ClientFailovers counts OnFailover firings — sessions replayed against
	// another endpoint after losing their backend mid-flight.
	ClientFailovers uint64
	// RouterFailovers/SplicesEvicted are the router's own view: dials
	// diverted off a dead owner, and in-flight splices reset with a typed
	// backend-lost verdict.
	RouterFailovers uint64
	SplicesEvicted  uint64
	// Latency is the distribution over all completed sessions;
	// FailoverLatency the subset that failed over at least once — their
	// difference is what a mid-session crash costs a client that survives
	// it.
	Latency         LatencyQuantiles
	FailoverLatency *LatencyQuantiles
	// SlowestTraceID identifies the slowest completed session's distributed
	// trace, and FailedOverTraceIDs the sessions that survived a failover —
	// the drill-down handles: grep them in any hop's traces.jsonl or load
	// the Chrome export to see where the time went.
	SlowestTraceID     string
	FailedOverTraceIDs []string
}

// RunFleetFailover drives cfg.Sessions announced sessions through a
// router-fronted fleet, crashes backend 0 a third of the way in, restarts
// it at two thirds, and reports throughput plus the failover accounting.
// Verdict caches are off so every session pays the full pipeline and the
// latency contrast isolates the failover cost.
func RunFleetFailover(cfg FleetFailoverConfig) (*FleetFailoverResult, error) {
	if len(cfg.Images) == 0 {
		return nil, fmt.Errorf("bench: FleetFailoverConfig.Images is required")
	}
	if cfg.Sessions <= 0 {
		return nil, fmt.Errorf("bench: FleetFailoverConfig.Sessions must be positive")
	}
	if cfg.Backends == 0 {
		cfg.Backends = 3
	}
	if cfg.Clients == 0 {
		cfg.Clients = 2
	}
	fleet, err := StartChaosFleet(ChaosFleetConfig{
		Backends:       cfg.Backends,
		Policies:       cfg.Policies,
		CacheEntries:   -1,
		HealthInterval: -1, // dial results police health; no prober jitter
	})
	if err != nil {
		return nil, err
	}
	fleet.Client.Route = &engarde.RouteHello{Tenant: "failover-bench"}

	// The victim is the ring owner of the first image's digest: sessions
	// for that digest are spliced to it, so a kill timed to one of its
	// active splices is a mid-stream crash the client must survive — not
	// one the router can absorb invisibly at dial time.
	sum := sha256.Sum256(cfg.Images[0])
	ring := cluster.NewRing(cluster.DefaultVnodes)
	for i := 0; i < cfg.Backends; i++ {
		ring.Add(fleet.BackendName(i))
	}
	victimName, _ := ring.Owner(hex.EncodeToString(sum[:]))
	victim := 0
	for i := 0; i < cfg.Backends; i++ {
		if fleet.BackendName(i) == victimName {
			victim = i
		}
	}

	var (
		finished        atomic.Uint64 // completed + dropped, drives the kill script
		completed       atomic.Uint64
		dropped         atomic.Uint64
		clientFailovers atomic.Uint64
		mu              sync.Mutex
		all, moved      []time.Duration
		slowest         time.Duration
		slowestTraceID  string
		movedTraceIDs   []string
	)

	// The kill script: the victim crashes after a third of the sessions —
	// timed to an instant it has a splice in flight — and comes back after
	// two thirds, so the run has healthy, degraded, and recovered phases.
	killAt, restartAt := uint64(cfg.Sessions/3), uint64(2*cfg.Sessions/3)
	ctlDone := make(chan struct{})
	go func() {
		defer close(ctlDone)
		for finished.Load() < killAt {
			time.Sleep(time.Millisecond)
		}
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if fleet.Router.Stats().Backends[victimName].Active > 0 {
				break
			}
			time.Sleep(time.Millisecond)
		}
		fleet.Kill(victim)
		for finished.Load() < restartAt {
			time.Sleep(time.Millisecond)
		}
		for fleet.Restart(victim) != nil {
			time.Sleep(5 * time.Millisecond)
		}
	}()

	next := make(chan int)
	errs := make(chan error, cfg.Clients)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			dials := make([]func() (net.Conn, error), cfg.Backends)
			for i := range dials {
				dials[i] = fleet.Dial
			}
			for i := range next {
				image := cfg.Images[i%len(cfg.Images)]
				var moves int
				// Every session originates its own distributed trace; the
				// IDs of interesting sessions (slowest, failed-over) come
				// out in the result for drill-down.
				tr := obs.NewTrace("provision", nil)
				s0 := time.Now()
				v, err := fleet.Client.ProvisionFailover(dials, image, engarde.RetryPolicy{
					Attempts:  8,
					BaseDelay: time.Millisecond,
					MaxDelay:  50 * time.Millisecond,
					Seed:      int64(c + 1),
					Trace:     tr,
					OnFailover: func(int, int, error) {
						moves++
						clientFailovers.Add(1)
					},
				})
				d := time.Since(s0)
				tr.Finish()
				finished.Add(1)
				if err != nil {
					dropped.Add(1)
					continue
				}
				if !v.Compliant {
					errs <- fmt.Errorf("bench: session %d rejected under failover: %s", i, v.Reason)
					break
				}
				completed.Add(1)
				mu.Lock()
				all = append(all, d)
				if d > slowest {
					slowest, slowestTraceID = d, tr.ID()
				}
				if moves > 0 {
					moved = append(moved, d)
					movedTraceIDs = append(movedTraceIDs, tr.ID())
				}
				mu.Unlock()
			}
			for range next {
				finished.Add(1)
			}
		}(c)
	}
	for i := 0; i < cfg.Sessions; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	elapsed := time.Since(start)
	<-ctlDone

	rs := fleet.Router.Stats()
	if err := fleet.Close(); err != nil {
		return nil, fmt.Errorf("bench: fleet shutdown: %w", err)
	}
	select {
	case err := <-errs:
		return nil, err
	default:
	}

	res := &FleetFailoverResult{
		Elapsed:         elapsed,
		SessionsPerSec:  float64(completed.Load()) / elapsed.Seconds(),
		Completed:       completed.Load(),
		Dropped:         dropped.Load(),
		ClientFailovers: clientFailovers.Load(),
		RouterFailovers: rs.Failovers,
		SplicesEvicted:  rs.SplicesEvicted,
	}
	if len(all) > 0 {
		res.Latency = *exactQuantiles(all)
		res.SlowestTraceID = slowestTraceID
	}
	if len(moved) > 0 {
		res.FailoverLatency = exactQuantiles(moved)
		res.FailedOverTraceIDs = movedTraceIDs
	}
	return res, nil
}
