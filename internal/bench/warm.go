package bench

// Warm-path provisioning experiment: the function-result cache
// (internal/policy/memo) memoizes per-function policy outcomes keyed by
// content digest × module fingerprint, so a second tenant image linked
// against the same approved musl build skips re-checking the shared ~95%
// of its text. RunWarmPath measures that effect with the paper's cycle
// methodology: provision image B cold (no cache), then provision image A
// to warm a shared cache, then provision image B against the warmed cache,
// and compare policy-phase cycles. Verdicts are identical on every path —
// only the metering differs.

import (
	"fmt"

	"engarde/internal/core"
	"engarde/internal/cycles"
	"engarde/internal/policy"
	"engarde/internal/policy/liblink"
	"engarde/internal/policy/memo"
	"engarde/internal/policy/noforbidden"
	"engarde/internal/policy/stackprot"
	"engarde/internal/sgx"
	"engarde/internal/toolchain"
)

// WarmPathConfig configures one warm-path run.
type WarmPathConfig struct {
	// NumFuncs / AvgFuncInsts size the two application bodies; defaults
	// 8 / 30 keep the app tiny next to the embedded musl, matching the
	// scenario the cache targets (libc is the bulk of every image).
	NumFuncs     int
	AvgFuncInsts int
	// DisasmWorkers / PolicyWorkers shard the pipeline (0 = GOMAXPROCS,
	// 1 = sequential).
	DisasmWorkers int
	PolicyWorkers int
	// FnCacheEntries bounds the cache (memo semantics: 0 = default).
	FnCacheEntries int
	// FnCachePath, when non-empty, adds the persistent tier.
	FnCachePath string
}

// WarmPathPoint is one measured provisioning run.
type WarmPathPoint struct {
	Label           string `json:"label"`
	NumInsts        int    `json:"num_insts"`
	PolicyCycles    uint64 `json:"policy_cycles"`
	DisasmCycles    uint64 `json:"disasm_cycles"`
	TotalCycles     uint64 `json:"total_cycles"`
	CachedFunctions uint64 `json:"cached_functions"`
}

// WarmPathResult reports the experiment: Cold and Warm provision the same
// image, so their verdict-relevant outputs are identical by construction
// and only the metered work differs.
type WarmPathResult struct {
	// Warming provisions image A with the (empty) shared cache, paying the
	// digest pass and populating per-function entries.
	Warming WarmPathPoint `json:"warming"`
	// Cold provisions image B with no cache: the full per-site hashing and
	// per-function scans of the baseline pipeline.
	Cold WarmPathPoint `json:"cold"`
	// Warm provisions image B against the cache image A populated; the
	// shared musl functions hit.
	Warm WarmPathPoint `json:"warm"`
	// PolicySpeedup is Cold.PolicyCycles / Warm.PolicyCycles.
	PolicySpeedup float64 `json:"policy_speedup"`
	// CacheStats is the shared cache's final snapshot.
	CacheStats memo.Stats `json:"cache_stats"`
}

// warmPolicies builds the experiment's policy set: the paper's
// library-linking and stack-protection modules plus the forbidden-
// instruction module — all memo-aware, and together exercising both the
// digest-table fast path (liblink) and whole-function memoization.
func warmPolicies() (*policy.Set, error) {
	db, err := toolchain.MuslHashDB(toolchain.MuslV105, true)
	if err != nil {
		return nil, err
	}
	ll := liblink.New("musl-libc v"+toolchain.MuslV105, db)
	ll.RequireUse = true
	return policy.NewSet(ll, stackprot.New(), noforbidden.New()), nil
}

// warmImage builds one stack-protected app (embedding the approved musl)
// from the given seed.
func warmImage(cfg WarmPathConfig, name string, seed int64) ([]byte, error) {
	bin, err := toolchain.Build(toolchain.Config{
		Name: name, Seed: seed,
		NumFuncs:       cfg.NumFuncs,
		AvgFuncInsts:   cfg.AvgFuncInsts,
		StackProtector: true,
	})
	if err != nil {
		return nil, err
	}
	return bin.Image, nil
}

// provisionMetered runs one image through a fresh enclave with its own
// counter and returns the measured point. fnMemo may be nil (cold).
func provisionMetered(cfg WarmPathConfig, label string, image []byte, pols *policy.Set, fnMemo *memo.Cache) (WarmPathPoint, error) {
	counter := cycles.NewCounter(cycles.DefaultModel())
	g, err := core.New(core.Config{
		Version:       sgx.V2,
		EPCPages:      sgx.ModifiedEPCPages,
		HeapPages:     1500,
		ClientPages:   512,
		Policies:      pols,
		Counter:       counter,
		DisasmWorkers: cfg.DisasmWorkers,
		PolicyWorkers: cfg.PolicyWorkers,
		FnMemo:        fnMemo,
	})
	if err != nil {
		return WarmPathPoint{}, fmt.Errorf("bench: creating enclave (%s): %w", label, err)
	}
	rep, err := g.Provision(image)
	if err != nil {
		return WarmPathPoint{}, fmt.Errorf("bench: provisioning (%s): %w", label, err)
	}
	if !rep.Compliant {
		return WarmPathPoint{}, fmt.Errorf("bench: %s unexpectedly rejected: %s", label, rep.Reason)
	}
	return WarmPathPoint{
		Label:           label,
		NumInsts:        rep.NumInsts,
		PolicyCycles:    counter.Cycles(cycles.PhasePolicy),
		DisasmCycles:    counter.Cycles(cycles.PhaseDisasm),
		TotalCycles:     counter.Total(),
		CachedFunctions: rep.CachedFunctions,
	}, nil
}

// RunWarmPath executes the experiment.
func RunWarmPath(cfg WarmPathConfig) (*WarmPathResult, error) {
	if cfg.NumFuncs == 0 {
		cfg.NumFuncs = 8
	}
	if cfg.AvgFuncInsts == 0 {
		cfg.AvgFuncInsts = 30
	}
	pols, err := warmPolicies()
	if err != nil {
		return nil, err
	}
	imgA, err := warmImage(cfg, "warmA", 9001)
	if err != nil {
		return nil, err
	}
	imgB, err := warmImage(cfg, "warmB", 9002)
	if err != nil {
		return nil, err
	}

	res := &WarmPathResult{}
	if res.Cold, err = provisionMetered(cfg, "cold", imgB, pols, nil); err != nil {
		return nil, err
	}

	cache, err := memo.Open(memo.Config{Entries: cfg.FnCacheEntries, Path: cfg.FnCachePath})
	if err != nil {
		return nil, err
	}
	defer cache.Close()
	if res.Warming, err = provisionMetered(cfg, "warming", imgA, pols, cache); err != nil {
		return nil, err
	}
	if res.Warm, err = provisionMetered(cfg, "warm", imgB, pols, cache); err != nil {
		return nil, err
	}
	if res.Warm.PolicyCycles > 0 {
		res.PolicySpeedup = float64(res.Cold.PolicyCycles) / float64(res.Warm.PolicyCycles)
	}
	res.CacheStats = cache.Stats()
	return res, nil
}

// WarmBench is prebuilt state for benchmarking the warm path with setup
// (toolchain builds, cache warming) hoisted out of the measured loop.
type WarmBench struct {
	cfg   WarmPathConfig
	image []byte // image B, provisioned by Provision
	pols  *policy.Set
	cache *memo.Cache // warmed by one provision of image A
}

// NewWarmBench builds both images, the policy set, and a cache warmed by
// one provisioning of image A.
func NewWarmBench(cfg WarmPathConfig) (*WarmBench, error) {
	if cfg.NumFuncs == 0 {
		cfg.NumFuncs = 8
	}
	if cfg.AvgFuncInsts == 0 {
		cfg.AvgFuncInsts = 30
	}
	pols, err := warmPolicies()
	if err != nil {
		return nil, err
	}
	imgA, err := warmImage(cfg, "warmA", 9001)
	if err != nil {
		return nil, err
	}
	imgB, err := warmImage(cfg, "warmB", 9002)
	if err != nil {
		return nil, err
	}
	cache, err := memo.Open(memo.Config{Entries: cfg.FnCacheEntries, Path: cfg.FnCachePath})
	if err != nil {
		return nil, err
	}
	w := &WarmBench{cfg: cfg, image: imgB, pols: pols, cache: cache}
	if _, err := provisionMetered(cfg, "warming", imgA, pols, cache); err != nil {
		cache.Close()
		return nil, err
	}
	return w, nil
}

// Provision runs image B through a fresh enclave — against the warmed
// cache when warm, or fully cold when not — and returns the metered point.
func (w *WarmBench) Provision(warm bool) (WarmPathPoint, error) {
	cache := w.cache
	label := "warm"
	if !warm {
		cache, label = nil, "cold"
	}
	return provisionMetered(w.cfg, label, w.image, w.pols, cache)
}

// Close releases the warmed cache.
func (w *WarmBench) Close() { w.cache.Close() }

// FormatWarmPath renders the experiment for the CLI.
func FormatWarmPath(r *WarmPathResult) string {
	out := "Warm-path provisioning (function-result cache)\n"
	out += fmt.Sprintf("%-8s %9s %15s %15s %10s\n", "Run", "#Inst.", "Disassembly", "PolicyCheck", "FnReused")
	for _, p := range []WarmPathPoint{r.Cold, r.Warming, r.Warm} {
		out += fmt.Sprintf("%-8s %9d %15d %15d %10d\n",
			p.Label, p.NumInsts, p.DisasmCycles, p.PolicyCycles, p.CachedFunctions)
	}
	out += fmt.Sprintf("policy-phase speedup (cold/warm): %.1fx; cache: %d entries, %d hits, %d misses\n",
		r.PolicySpeedup, r.CacheStats.Entries, r.CacheStats.Hits, r.CacheStats.Misses)
	return out
}
