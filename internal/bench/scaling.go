package bench

import (
	"fmt"
	"strings"

	"engarde/internal/core"
	"engarde/internal/cycles"
	"engarde/internal/policy"
	"engarde/internal/policy/liblink"
	"engarde/internal/policy/stackprot"
	"engarde/internal/sgx"
	"engarde/internal/toolchain"
)

// Scaling sweep: a supplementary experiment the paper's evaluation implies
// but does not tabulate — how EnGarde's one-time provisioning cost scales
// with client size. Disassembly and loading are linear in the instruction
// count; the library-linking check scales with call sites × callee size;
// the stack-protection check is superlinear in function size. The sweep
// holds the shape knobs fixed and varies only the function count.

// ScalePoint is one row of the sweep.
type ScalePoint struct {
	NumFuncs  int
	NumInsts  int
	Disasm    uint64
	Liblink   uint64
	Stackprot uint64
	Load      uint64
}

// RunScaling sweeps client size over the given function counts.
func RunScaling(funcCounts []int) ([]ScalePoint, error) {
	db, err := toolchain.MuslHashDB(toolchain.MuslV105, false)
	if err != nil {
		return nil, err
	}
	dbSP, err := toolchain.MuslHashDB(toolchain.MuslV105, true)
	if err != nil {
		return nil, err
	}
	_ = dbSP

	out := make([]ScalePoint, 0, len(funcCounts))
	for _, n := range funcCounts {
		pt := ScalePoint{NumFuncs: n}

		// Pass 1: plain build, library-linking policy.
		plain := toolchain.Config{
			Name: "sweep", Seed: int64(1000 + n),
			NumFuncs: n, AvgFuncInsts: 120, FuncSizeVariance: 0.4,
			LibcCallRate: 0.06, AppCallRate: 0.02,
		}
		ins, dis, pol, load, err := provisionCost(plain, policy.NewSet(liblink.New("musl", db)))
		if err != nil {
			return nil, fmt.Errorf("bench: scaling n=%d (liblink): %w", n, err)
		}
		pt.NumInsts, pt.Disasm, pt.Liblink, pt.Load = ins, dis, pol, load

		// Pass 2: protected build, stack-protection policy.
		sp := plain
		sp.StackProtector = true
		_, _, pol2, _, err := provisionCost(sp, policy.NewSet(stackprot.New()))
		if err != nil {
			return nil, fmt.Errorf("bench: scaling n=%d (stackprot): %w", n, err)
		}
		pt.Stackprot = pol2

		out = append(out, pt)
	}
	return out, nil
}

func provisionCost(cfg toolchain.Config, pols *policy.Set) (insts int, dis, pol, load uint64, err error) {
	bin, err := toolchain.Build(cfg)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	ctr := cycles.NewCounter(cycles.DefaultModel())
	g, err := core.New(core.Config{
		Version: sgx.V2, EPCPages: 16384,
		HeapPages: sgx.ModifiedHeapPages, ClientPages: 1024,
		Policies: pols, Counter: ctr,
	})
	if err != nil {
		return 0, 0, 0, 0, err
	}
	rep, err := g.Provision(bin.Image)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	if !rep.Compliant {
		return 0, 0, 0, 0, fmt.Errorf("rejected: %s", rep.Reason)
	}
	return rep.NumInsts, ctr.Cycles(cycles.PhaseDisasm), ctr.Cycles(cycles.PhasePolicy), ctr.Cycles(cycles.PhaseLoad), nil
}

// SizePoint is one row of the function-size sweep.
type SizePoint struct {
	NumFuncs     int
	AvgFuncInsts int
	NumInsts     int
	Disasm       uint64
	Stackprot    uint64
}

// RunSizeScaling holds the total app size roughly constant (~30K body
// instructions) while concentrating it into ever larger functions — the
// isolated mechanism behind Figure 4's bzip2-beats-Nginx inversion. The
// stack-protection check's per-instruction cost must grow with function
// size while disassembly stays flat.
func RunSizeScaling() ([]SizePoint, error) {
	shapes := []struct{ funcs, avg int }{
		{300, 100}, {150, 200}, {75, 400}, {37, 800}, {18, 1600},
	}
	out := make([]SizePoint, 0, len(shapes))
	for _, sh := range shapes {
		cfg := toolchain.Config{
			Name: "sizesweep", Seed: int64(2000 + sh.funcs),
			NumFuncs: sh.funcs, AvgFuncInsts: sh.avg, FuncSizeVariance: 0.3,
			LibcCallRate: 0.03, AppCallRate: 0.01,
			StackProtector: true,
		}
		ins, dis, pol, _, err := provisionCost(cfg, policy.NewSet(stackprot.New()))
		if err != nil {
			return nil, fmt.Errorf("bench: size sweep %dx%d: %w", sh.funcs, sh.avg, err)
		}
		out = append(out, SizePoint{
			NumFuncs: sh.funcs, AvgFuncInsts: sh.avg,
			NumInsts: ins, Disasm: dis, Stackprot: pol,
		})
	}
	return out, nil
}

// FormatSizeScaling renders the function-size sweep.
func FormatSizeScaling(points []SizePoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Function-size sweep at constant total size (the Figure-4 mechanism)\n")
	fmt.Fprintf(&b, "%7s %9s %9s %22s %22s\n",
		"#funcs", "avg size", "#insts", "disassembly", "stackprot check")
	for _, p := range points {
		per := func(c uint64) string {
			return fmt.Sprintf("%d (%.0f)", c, float64(c)/float64(p.NumInsts))
		}
		fmt.Fprintf(&b, "%7d %9d %9d %22s %22s\n",
			p.NumFuncs, p.AvgFuncInsts, p.NumInsts, per(p.Disasm), per(p.Stackprot))
	}
	return b.String()
}

// FormatScaling renders the sweep with per-instruction normalization, so
// the linear-vs-superlinear contrast is visible at a glance.
func FormatScaling(points []ScalePoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Provisioning-cost scaling (supplementary; cycles, cyc/inst in parens)\n")
	fmt.Fprintf(&b, "%7s %9s %22s %22s %22s %10s\n",
		"#funcs", "#insts", "disassembly", "liblink check", "stackprot check", "load")
	for _, p := range points {
		per := func(c uint64) string {
			return fmt.Sprintf("%d (%.0f)", c, float64(c)/float64(p.NumInsts))
		}
		fmt.Fprintf(&b, "%7d %9d %22s %22s %22s %10d\n",
			p.NumFuncs, p.NumInsts, per(p.Disasm), per(p.Liblink), per(p.Stackprot), p.Load)
	}
	return b.String()
}
