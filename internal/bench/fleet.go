package bench

// Fleet load generation: RunFleetLoad stands up N internal/gateway
// backends on real loopback TCP sockets — each with its own provider,
// platform key, admin endpoints (/readyz, /memoz/) — behind one
// internal/cluster router, and drives provisioning sessions through the
// router exactly as a fleet deployment would: clients announce their
// image digest, the router splices them to the ring owner, and backends
// share warm-path state over the fn-cache peer protocol. It is the
// engine behind BENCH_6.json and the fleet acceptance tests.

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"engarde"
	"engarde/internal/cluster"
	"engarde/internal/gateway"
	"engarde/internal/toolchain"
)

// FleetLoadConfig configures one fleet load run.
type FleetLoadConfig struct {
	// Backends is the number of gatewayd backends behind the router.
	// Required.
	Backends int
	// Images are provisioned round-robin across sessions. All must be
	// compliant under Policies. Required.
	Images [][]byte
	// Sessions is the total number of provisioning sessions. Required.
	Sessions int
	// Clients is the number of concurrent client goroutines; 0 means 2.
	Clients int
	// Announce sends the RouteHello preamble so the router can route each
	// session to its digest's ring owner. False exercises the anonymous
	// least-loaded fallback.
	Announce bool
	// Tenant labels announced sessions for the router's quota accounting.
	Tenant string
	// SharedFnCache wires every backend's fn-cache remote tier at all the
	// other backends' /memoz endpoints, so warm-path state crosses nodes.
	SharedFnCache bool
	// FnCacheEntries is each backend's function-result cache capacity
	// (gateway semantics: 0 default, negative disables). SharedFnCache
	// requires the cache to be enabled.
	FnCacheEntries int
	// CacheEntries configures each backend's verdict cache (gateway
	// semantics: 0 default, negative disabled).
	CacheEntries int
	// MaxConcurrent is each backend's worker-pool size; 0 means the
	// gateway default.
	MaxConcurrent int
	// Policies is the policy set; nil means stack-protector.
	Policies *engarde.PolicySet
	// HeapPages/ClientPages size each session's enclave; 0 means 1500/512.
	HeapPages   int
	ClientPages int
}

// FleetBackendLoad is one backend's share of a fleet run, joining the
// router's view (sessions spliced, dial errors) with the gateway's own
// accounting (verdicts, cache behaviour, peer traffic).
type FleetBackendLoad struct {
	Sessions         uint64 `json:"sessions"`
	Errors           uint64 `json:"errors"`
	Served           uint64 `json:"served"`
	Compliant        uint64 `json:"compliant"`
	VerdictCacheHits uint64 `json:"verdict_cache_hits"`
	FnCacheHits      uint64 `json:"fn_cache_hits,omitempty"`
	FnRemoteHits     uint64 `json:"fn_remote_hits,omitempty"`
	FnRemotePuts     uint64 `json:"fn_remote_puts,omitempty"`
	FnPeerServed     uint64 `json:"fn_peer_served,omitempty"`
	FnPeerStored     uint64 `json:"fn_peer_stored,omitempty"`
}

// FleetLoadResult reports one fleet run.
type FleetLoadResult struct {
	Elapsed        time.Duration
	SessionsPerSec float64
	// Announced/Affine count sessions that carried a routing preamble and
	// the subset the router landed on the digest's ring owner.
	Announced  uint64
	Affine     uint64
	Rebalances uint64
	PerBackend map[string]FleetBackendLoad
	Router     cluster.RouterStats
}

// FleetBenchWorkload builds the BENCH_6.json fleet workload: two large
// byte-distinct executables instrumented for the full four-module policy
// set (approved-musl linking, stack protector, IFCC, no-forbidden), plus
// that set and a heap sized to just fit them. Checking four modules over
// ~75k instructions makes the cacheable pipeline work dominate the fixed
// per-session cost (attestation, transfer, enclave measurement), so the
// warm/cold contrast measures the caches rather than connection setup.
func FleetBenchWorkload() (images [][]byte, policies *engarde.PolicySet, heapPages int, err error) {
	images = make([][]byte, 2)
	for i := range images {
		bin, err := toolchain.Build(toolchain.Config{
			Name: fmt.Sprintf("fleetbench%d", i), Seed: int64(8300 + i),
			NumFuncs: 300, AvgFuncInsts: 250,
			LibcCallRate: 0.05, StackProtector: true, IFCC: true, IndirectRate: 0.02,
		})
		if err != nil {
			return nil, nil, 0, err
		}
		images[i] = bin.Image
	}
	musl, err := engarde.MuslLinkingPolicy(engarde.MuslApprovedVersion, true)
	if err != nil {
		return nil, nil, 0, err
	}
	policies = engarde.NewPolicySet(engarde.NoForbiddenInstructionsPolicy(), musl,
		engarde.StackProtectorPolicy(), engarde.IFCCPolicy())
	return images, policies, 1750, nil
}

// fleetBackend is one running gatewayd-shaped backend.
type fleetBackend struct {
	name     string
	gw       *gateway.Gateway
	ln       net.Listener
	adminLn  net.Listener
	adminSrv *http.Server
	serveErr chan error
}

// RunFleetLoad drives cfg.Sessions provisioning sessions through a
// router-fronted fleet and returns throughput plus per-backend breakdown.
// Any non-compliant verdict or protocol error fails the run.
func RunFleetLoad(cfg FleetLoadConfig) (*FleetLoadResult, error) {
	if cfg.Backends <= 0 {
		return nil, fmt.Errorf("bench: FleetLoadConfig.Backends must be positive")
	}
	if len(cfg.Images) == 0 {
		return nil, fmt.Errorf("bench: FleetLoadConfig.Images is required")
	}
	if cfg.Sessions <= 0 {
		return nil, fmt.Errorf("bench: FleetLoadConfig.Sessions must be positive")
	}
	if cfg.Policies == nil {
		cfg.Policies = engarde.NewPolicySet(engarde.StackProtectorPolicy())
	}
	if cfg.Clients == 0 {
		cfg.Clients = 2
	}
	if cfg.HeapPages == 0 {
		cfg.HeapPages = 1500
	}
	if cfg.ClientPages == 0 {
		cfg.ClientPages = 512
	}

	// Admin listeners come up first: the peer URLs they determine are part
	// of each gateway's configuration.
	adminURLs := make([]string, cfg.Backends)
	backends := make([]*fleetBackend, cfg.Backends)
	defer func() {
		for _, b := range backends {
			if b == nil {
				continue
			}
			if b.adminSrv != nil {
				b.adminSrv.Close()
			} else if b.adminLn != nil {
				b.adminLn.Close()
			}
			if b.ln != nil {
				b.ln.Close()
			}
		}
	}()
	for i := range backends {
		adminLn, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		backends[i] = &fleetBackend{
			name:     fmt.Sprintf("b%d", i),
			adminLn:  adminLn,
			serveErr: make(chan error, 1),
		}
		adminURLs[i] = "http://" + adminLn.Addr().String()
	}

	// One client template serves every goroutine: it carries all the
	// backends' platform keys, since an announced session can legitimately
	// land on (or fail over to) any node in the fleet.
	client := &engarde.Client{}
	routerBackends := make([]cluster.Backend, cfg.Backends)
	for i, b := range backends {
		provider, err := engarde.NewProvider(engarde.ProviderConfig{EPCPages: 32000})
		if err != nil {
			return nil, err
		}
		if i == 0 {
			client.PlatformKey = provider.AttestationPublicKey()
		} else {
			client.PlatformKeys = append(client.PlatformKeys, provider.AttestationPublicKey())
		}
		var peers []string
		if cfg.SharedFnCache {
			for j, u := range adminURLs {
				if j != i {
					peers = append(peers, u+"/memoz")
				}
			}
		}
		fnEntries := cfg.FnCacheEntries
		if fnEntries <= 0 {
			// A shared fn-cache implies the cache itself: 0 takes the
			// gateway default capacity. Without sharing, runs keep the
			// cache off so they isolate what they measure.
			if cfg.SharedFnCache {
				fnEntries = 0
			} else {
				fnEntries = -1
			}
		}
		gw, err := gateway.New(gateway.Config{
			Provider:       provider,
			Policies:       cfg.Policies,
			HeapPages:      cfg.HeapPages,
			ClientPages:    cfg.ClientPages,
			MaxConcurrent:  cfg.MaxConcurrent,
			CacheEntries:   cfg.CacheEntries,
			FnCacheEntries: fnEntries,
			FnCachePeers:   peers,
			IdleTimeout:    time.Minute,
			SessionBudget:  2 * time.Minute,
		})
		if err != nil {
			return nil, err
		}
		b.gw = gw
		mux := http.NewServeMux()
		mux.Handle("/statsz", gw.StatsHandler())
		mux.Handle("/healthz", gw.HealthzHandler())
		mux.Handle("/readyz", gw.ReadyzHandler())
		mux.Handle("/memoz/", gw.FnMemoHandler())
		b.adminSrv = &http.Server{Handler: mux}
		go func(srv *http.Server, ln net.Listener) { _ = srv.Serve(ln) }(b.adminSrv, b.adminLn)

		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		b.ln = ln
		go func(b *fleetBackend) { b.serveErr <- b.gw.Serve(context.Background(), b.ln) }(b)
		routerBackends[i] = cluster.Backend{
			Name: b.name, Addr: ln.Addr().String(), AdminURL: adminURLs[i],
		}
	}

	router, err := cluster.NewRouter(cluster.RouterConfig{
		Backends:       routerBackends,
		HealthInterval: -1, // dial results police health; no prober jitter in runs
	})
	if err != nil {
		return nil, err
	}
	routerLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	routerErr := make(chan error, 1)
	go func() { routerErr <- router.Serve(context.Background(), routerLn) }()
	routerAddr := routerLn.Addr().String()

	expected, err := engarde.ExpectedMeasurement(engarde.SGXv2, engarde.EnclaveConfig{
		HeapPages: cfg.HeapPages, ClientPages: cfg.ClientPages,
	})
	if err != nil {
		return nil, err
	}
	client.Expected = expected
	if cfg.Announce {
		client.Route = &engarde.RouteHello{Tenant: cfg.Tenant}
	}

	next := make(chan int)
	errs := make(chan error, cfg.Clients)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			policy := engarde.RetryPolicy{
				Attempts:  10,
				BaseDelay: time.Millisecond,
				MaxDelay:  100 * time.Millisecond,
				Seed:      int64(c + 1),
			}
			dial := func() (net.Conn, error) { return net.Dial("tcp", routerAddr) }
			for i := range next {
				image := cfg.Images[i%len(cfg.Images)]
				v, err := client.ProvisionRetry(dial, image, policy)
				if err != nil {
					errs <- fmt.Errorf("session %d: %w", i, err)
					break
				}
				if !v.Compliant {
					errs <- fmt.Errorf("session %d rejected: %s", i, v.Reason)
					break
				}
			}
			// Drain so the producer never blocks on a dead worker set.
			for range next {
			}
		}(c)
	}
	for i := 0; i < cfg.Sessions; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	elapsed := time.Since(start)

	shutCtx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := router.Shutdown(shutCtx); err != nil {
		return nil, fmt.Errorf("bench: router shutdown: %w", err)
	}
	if err := <-routerErr; err != nil {
		return nil, fmt.Errorf("bench: router serve: %w", err)
	}
	for _, b := range backends {
		if err := b.gw.Shutdown(shutCtx); err != nil {
			return nil, fmt.Errorf("bench: backend %s shutdown: %w", b.name, err)
		}
		if err := <-b.serveErr; err != nil {
			return nil, fmt.Errorf("bench: backend %s serve: %w", b.name, err)
		}
	}
	select {
	case err := <-errs:
		return nil, err
	default:
	}

	rs := router.Stats()
	res := &FleetLoadResult{
		Elapsed:        elapsed,
		SessionsPerSec: float64(cfg.Sessions) / elapsed.Seconds(),
		Announced:      rs.Announced,
		Affine:         rs.Affine,
		Rebalances:     rs.Rebalances,
		PerBackend:     make(map[string]FleetBackendLoad, cfg.Backends),
		Router:         rs,
	}
	for _, b := range backends {
		gs := b.gw.Stats()
		load := FleetBackendLoad{
			Sessions:         rs.Backends[b.name].Sessions,
			Errors:           rs.Backends[b.name].Errors,
			Served:           gs.Served,
			Compliant:        gs.Compliant,
			VerdictCacheHits: gs.CacheHits,
		}
		if gs.FnCache != nil {
			load.FnCacheHits = gs.FnCache.Hits
			load.FnRemoteHits = gs.FnCache.RemoteHits
			load.FnRemotePuts = gs.FnCache.RemotePuts
			load.FnPeerServed = gs.FnCache.PeerServed
			load.FnPeerStored = gs.FnCache.PeerStored
		}
		res.PerBackend[b.name] = load
	}
	return res, nil
}
