package bench

import (
	"strings"
	"testing"

	"engarde/internal/workload"
)

// ratio bounds accepted for "shape holds" (paper-vs-measured).
const (
	loBound = 0.5
	hiBound = 2.0
)

func runExp(t *testing.T, exp Experiment) []Row {
	t.Helper()
	rows, err := RunAll(exp)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("got %d rows, want 7", len(rows))
	}
	t.Log("\n" + FormatTable(exp, rows))
	return rows
}

func checkRatios(t *testing.T, exp Experiment, rows []Row) {
	t.Helper()
	paper := PaperRows(exp)
	for _, r := range rows {
		p, ok := paper[r.Benchmark]
		if !ok {
			t.Errorf("no paper reference for %s", r.Benchmark)
			continue
		}
		check := func(col string, m, q uint64) {
			ratio := float64(m) / float64(q)
			if ratio < loBound || ratio > hiBound {
				t.Errorf("%v %s %s: measured/paper = %.2f outside [%.1f, %.1f]",
					exp, r.Benchmark, col, ratio, loBound, hiBound)
			}
		}
		check("#Inst", uint64(r.NumInsts), uint64(p.NumInsts))
		check("PolicyChecking", r.PolicyChecking, p.PolicyChecking)
		check("Load+Reloc", r.LoadReloc, p.LoadReloc)
		// Disassembly gets a looser band: the paper's own numbers for the
		// same benchmark vary ~18% across its three tables, and its Nginx
		// row is a per-instruction outlier (2648 cyc/inst vs ~1400 for
		// every other benchmark).
		ratio := float64(r.Disassembly) / float64(p.Disassembly)
		if ratio < 0.4 || ratio > 2.5 {
			t.Errorf("%v %s Disassembly: ratio %.2f outside [0.4, 2.5]", exp, r.Benchmark, ratio)
		}
	}
}

func TestFig3ShapeHolds(t *testing.T) {
	rows := runExp(t, Fig3)
	checkRatios(t, Fig3, rows)
	// Headline shape: Nginx's check is by far the most expensive; every
	// benchmark's policy cost exceeds its loading cost by orders of
	// magnitude.
	byName := map[string]Row{}
	for _, r := range rows {
		byName[r.Benchmark] = r
	}
	for _, r := range rows {
		if r.Benchmark == "Nginx" {
			continue
		}
		if byName["Nginx"].PolicyChecking <= r.PolicyChecking {
			t.Errorf("Nginx (%d) should dominate %s (%d) in Figure 3",
				byName["Nginx"].PolicyChecking, r.Benchmark, r.PolicyChecking)
		}
	}
	for _, r := range rows {
		if r.PolicyChecking < 1000*r.LoadReloc {
			t.Errorf("%s: policy cost %d not ≫ loading cost %d", r.Benchmark, r.PolicyChecking, r.LoadReloc)
		}
	}
}

func TestFig4ShapeHolds(t *testing.T) {
	rows := runExp(t, Fig4)
	checkRatios(t, Fig4, rows)
	// The paper's signature inversion: 401.bzip2 costs MORE than Nginx
	// despite having an order of magnitude fewer instructions, because the
	// per-function pattern scan is superlinear in function size.
	byName := map[string]Row{}
	for _, r := range rows {
		byName[r.Benchmark] = r
	}
	bz, ng := byName["401.bzip2"], byName["Nginx"]
	if bz.NumInsts*5 > ng.NumInsts {
		t.Fatalf("precondition broken: bzip2 (%d) should be ≫ smaller than nginx (%d)", bz.NumInsts, ng.NumInsts)
	}
	if bz.PolicyChecking <= ng.PolicyChecking {
		t.Errorf("Figure 4 inversion lost: bzip2 %d ≤ nginx %d",
			bz.PolicyChecking, ng.PolicyChecking)
	}
}

func TestFig5ShapeHolds(t *testing.T) {
	rows := runExp(t, Fig5)
	checkRatios(t, Fig5, rows)
	// IFCC checking is cheap and near-uniform per instruction: max/min
	// per-instruction cost stays within a small band (paper: 70-91
	// cycles/inst).
	lo, hi := 1e18, 0.0
	for _, r := range rows {
		per := float64(r.PolicyChecking) / float64(r.NumInsts)
		if per < lo {
			lo = per
		}
		if per > hi {
			hi = per
		}
	}
	if hi/lo > 2.0 {
		t.Errorf("per-instruction IFCC cost spread %.1f–%.1f exceeds 2x", lo, hi)
	}
	// And it is orders of magnitude cheaper than the library check.
	fig3Row, err := Run(Fig3, mustSpec(t, "429.mcf"))
	if err != nil {
		t.Fatal(err)
	}
	var fig5mcf Row
	for _, r := range rows {
		if r.Benchmark == "429.mcf" {
			fig5mcf = r
		}
	}
	if fig5mcf.PolicyChecking*20 > fig3Row.PolicyChecking {
		t.Errorf("IFCC check (%d) should be ≫ cheaper than liblink (%d)",
			fig5mcf.PolicyChecking, fig3Row.PolicyChecking)
	}
}

func mustSpec(t *testing.T, name string) workload.Spec {
	t.Helper()
	s, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDisassemblyScalesWithSize(t *testing.T) {
	rows := runExp(t, Fig5)
	// Disassembly cost must be monotone in instruction count.
	for _, a := range rows {
		for _, b := range rows {
			if a.NumInsts < b.NumInsts && a.Disassembly >= b.Disassembly {
				t.Errorf("disassembly not monotone: %s (%d inst, %d cyc) vs %s (%d inst, %d cyc)",
					a.Benchmark, a.NumInsts, a.Disassembly,
					b.Benchmark, b.NumInsts, b.Disassembly)
			}
		}
	}
}

func TestScalingShapes(t *testing.T) {
	// Size sweep: disassembly per-instruction cost flat; stack-protection
	// per-instruction cost strictly growing with function size.
	points, err := RunSizeScaling()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) < 3 {
		t.Fatal("sweep too short")
	}
	var prevSP float64
	for i, p := range points {
		dis := float64(p.Disasm) / float64(p.NumInsts)
		sp := float64(p.Stackprot) / float64(p.NumInsts)
		if i > 0 {
			first := float64(points[0].Disasm) / float64(points[0].NumInsts)
			if dis < first*0.95 || dis > first*1.05 {
				t.Errorf("disassembly per-inst not flat: %.0f vs %.0f", dis, first)
			}
			if sp <= prevSP {
				t.Errorf("stackprot per-inst not growing: %.0f after %.0f (avg size %d)",
					sp, prevSP, p.AvgFuncInsts)
			}
		}
		prevSP = sp
	}
	// Superlinearity is strong: the largest-function point must cost
	// several times the smallest per instruction.
	firstSP := float64(points[0].Stackprot) / float64(points[0].NumInsts)
	lastSP := float64(points[len(points)-1].Stackprot) / float64(points[len(points)-1].NumInsts)
	if lastSP < 4*firstSP {
		t.Errorf("superlinearity too weak: %.0f vs %.0f cyc/inst", lastSP, firstSP)
	}

	// Count sweep: total costs grow monotonically with size.
	counts, err := RunScaling([]int{25, 100, 400})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(counts); i++ {
		if counts[i].Disasm <= counts[i-1].Disasm || counts[i].Liblink <= counts[i-1].Liblink {
			t.Errorf("costs not monotone in size at point %d", i)
		}
	}
	t.Log("\n" + FormatSizeScaling(points) + "\n" + FormatScaling(counts))
}

func TestFormatTableMentionsPaper(t *testing.T) {
	rows := []Row{{Benchmark: "Nginx", NumInsts: 1, Disassembly: 2, PolicyChecking: 3, LoadReloc: 4}}
	out := FormatTable(Fig3, rows)
	if !strings.Contains(out, "Nginx") || !strings.Contains(out, "ratio") {
		t.Errorf("table output malformed:\n%s", out)
	}
}

func TestExperimentMetadata(t *testing.T) {
	if Fig3.Variant() != workload.Plain || Fig4.Variant() != workload.StackProtected || Fig5.Variant() != workload.IFCCProtected {
		t.Error("experiment→variant mapping broken")
	}
	for _, e := range []Experiment{Fig3, Fig4, Fig5} {
		if PaperRows(e) == nil {
			t.Errorf("%v has no paper reference", e)
		}
		if _, err := e.policies(); err != nil {
			t.Errorf("%v: policies: %v", e, err)
		}
	}
}
