package bench

import "testing"

// TestWarmProvisionSpeedup pins the acceptance bar for the warm path: a
// second image sharing the approved libc must cut metered policy-phase
// cycles by at least 5x against the cold run. Workers are pinned to 1 so
// the span cuts — and with them the metered figures — are reproducible.
func TestWarmProvisionSpeedup(t *testing.T) {
	res, err := RunWarmPath(WarmPathConfig{DisasmWorkers: 1, PolicyWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Warm.CachedFunctions == 0 {
		t.Fatal("warm run reused no function outcomes; the cache never engaged")
	}
	if res.PolicySpeedup < 5 {
		t.Fatalf("policy-phase speedup %.2fx (cold %d cycles, warm %d), want >= 5x",
			res.PolicySpeedup, res.Cold.PolicyCycles, res.Warm.PolicyCycles)
	}
	// Disassembly is content-independent of the cache: warm and cold decode
	// the same image, so those figures must not drift.
	if res.Warm.DisasmCycles != res.Cold.DisasmCycles || res.Warm.NumInsts != res.Cold.NumInsts {
		t.Fatalf("warm run changed disassembly: %d cycles/%d insts vs cold %d/%d",
			res.Warm.DisasmCycles, res.Warm.NumInsts, res.Cold.DisasmCycles, res.Cold.NumInsts)
	}
}
