package bench

// Fleet observability tests: the tracing acceptance criteria (one trace ID
// across client, router, and gateway span output; one trace spanning a
// mid-stream failover's kill/replay seam) and the race-enabled hammer that
// scrapes /fleetz and pprof while ChaosFleet crashes and restarts backends
// underneath the aggregator.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"engarde"
	"engarde/internal/cluster"
	"engarde/internal/obs"
	"engarde/internal/obs/fleet"
)

// sinkHasTrace polls a sink until a trace with the given ID is recorded —
// the router and gateway record their traces at session teardown, which
// races the client's verdict receipt by design.
func sinkHasTrace(s *obs.Sink, id string) bool {
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		for _, d := range s.Recent() {
			if d.ID == id {
				return true
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	return false
}

// TestFleetTracePropagation is the single-session acceptance test: a
// client-originated trace ID must appear verbatim in the client's own
// trace, the router's route trace, and the serving gateway's session
// trace — three processes' span output joined by one 128-bit ID.
func TestFleetTracePropagation(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet topology is not short")
	}
	image := chaosImage(t, "traceprop", 9301, 40, true)
	fl, err := StartChaosFleet(ChaosFleetConfig{
		Backends:       2,
		CacheEntries:   -1,
		HealthInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	fl.Client.Route = &engarde.RouteHello{Tenant: "traceprop"}

	tr := obs.NewTrace("provision", nil)
	v, err := fl.Client.ProvisionFailover(
		[]func() (net.Conn, error){fl.Dial}, image,
		engarde.RetryPolicy{Attempts: 2, Seed: 1, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Compliant {
		t.Fatalf("verdict = %+v, want compliant", v)
	}
	tr.Finish()

	traceID := tr.ID()
	if len(traceID) != 32 {
		t.Fatalf("client trace ID %q was not upgraded to 128 bits", traceID)
	}
	// The client's own span output carries attempt spans under that ID.
	d := tr.Snapshot()
	var sawAttempt bool
	for _, sp := range d.Spans {
		if sp.Name == "attempt" && sp.Args["outcome"] == "verdict" {
			sawAttempt = true
		}
	}
	if !sawAttempt {
		t.Errorf("client trace has no successful attempt span: %+v", d.Spans)
	}

	if !sinkHasTrace(fl.RouterSink(), traceID) {
		t.Errorf("router never recorded a route trace with ID %s", traceID)
	}
	gwHasIt := false
	for i := 0; i < 2; i++ {
		if sinkHasTrace(fl.Sink(i), traceID) {
			gwHasIt = true
			break
		}
	}
	if !gwHasIt {
		t.Errorf("no gateway recorded a session trace with ID %s", traceID)
	}
}

// TestFleetFailoverOneTrace is the kill/replay-seam acceptance test: the
// deterministic mid-stream owner death from TestFleetFailoverMidStream,
// driven under one client trace. Attempt 1 (died mid-stream) and attempt 2
// (replayed on the survivor) must be spans of the same trace, and the
// survivor's session trace must carry that same ID.
func TestFleetFailoverOneTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet topology is not short")
	}
	image := chaosImage(t, "traceseam", 9302, 60, true)
	const killAt = 4096
	if len(image) < 3*killAt {
		t.Fatalf("image too small (%d bytes) for a mid-transfer kill", len(image))
	}

	fl, err := StartChaosFleet(ChaosFleetConfig{
		Backends:       2,
		CacheEntries:   -1,
		HealthInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	fl.Client.Route = &engarde.RouteHello{Tenant: "traceseam"}

	owner, survivor := ringOwner(t, fl, image)

	var killOnce sync.Once
	killDial := func() (net.Conn, error) {
		conn, err := fl.Dial()
		if err != nil {
			return nil, err
		}
		return &killAfterConn{Conn: conn, threshold: killAt, kill: func() {
			killOnce.Do(func() { fl.Kill(owner) })
		}}, nil
	}

	reg := obs.NewRegistry()
	metrics := engarde.NewClientMetrics(reg)
	tr := obs.NewTrace("provision", nil)
	var moves int
	v, err := fl.Client.ProvisionFailover(
		[]func() (net.Conn, error){killDial, fl.Dial}, image,
		engarde.RetryPolicy{
			Attempts: 4, Seed: 1, Trace: tr, Metrics: metrics,
			Sleep:      func(time.Duration) {},
			OnFailover: func(int, int, error) { moves++ },
		})
	if err != nil {
		t.Fatalf("provision with mid-stream owner death: %v", err)
	}
	if !v.Compliant {
		t.Fatalf("verdict = %+v, want compliant", v)
	}
	if moves == 0 {
		t.Fatal("OnFailover never fired — the kill did not interrupt the session")
	}
	tr.Finish()
	traceID := tr.ID()

	// One trace, two attempt spans, both sides of the seam.
	attempts := map[string]string{} // attempt number -> outcome
	for _, sp := range tr.Snapshot().Spans {
		if sp.Name == "attempt" {
			attempts[sp.Args["attempt"]] = sp.Args["outcome"]
		}
	}
	if len(attempts) < 2 {
		t.Fatalf("trace has %d attempt spans, want >= 2: %v", len(attempts), attempts)
	}
	if attempts["1"] == "verdict" {
		t.Errorf("attempt 1 outcome = verdict; the kill should have failed it (%v)", attempts)
	}
	var finished bool
	for _, outcome := range attempts {
		if outcome == "verdict" {
			finished = true
		}
	}
	if !finished {
		t.Errorf("no attempt span carries the verdict outcome: %v", attempts)
	}

	// The survivor's session trace joined the same distributed trace.
	if !sinkHasTrace(fl.Sink(survivor), traceID) {
		t.Errorf("survivor's gateway never recorded trace %s", traceID)
	}

	// The failover was counted by class, and the client exposition lints.
	var expo strings.Builder
	if err := reg.WriteText(&expo); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(expo.String(), `engarde_client_failovers_total{class="`) {
		t.Errorf("client failover counter missing from exposition:\n%s", expo.String())
	}
	if !strings.Contains(expo.String(), "} 1") {
		t.Errorf("no failover class counted exactly one move:\n%s", expo.String())
	}
	if errs := obs.Lint(strings.NewReader(expo.String())); len(errs) > 0 {
		t.Errorf("client exposition fails lint: %v", errs)
	}
}

// ringOwner predicts which backend owns image's digest on the router's
// ring, returning (owner, survivor) indices for a 2-backend fleet.
func ringOwner(t *testing.T, fl *ChaosFleet, image []byte) (int, int) {
	t.Helper()
	sum := sha256.Sum256(image)
	ring := cluster.NewRing(cluster.DefaultVnodes)
	for i := 0; i < 2; i++ {
		ring.Add(fl.BackendName(i))
	}
	ownerName, ok := ring.Owner(hex.EncodeToString(sum[:]))
	if !ok {
		t.Fatal("ring has no owner")
	}
	owner := 0
	if ownerName == fl.BackendName(1) {
		owner = 1
	}
	return owner, 1 - owner
}

// TestFleetObservabilityHammer is the race-enabled satellite: concurrent
// clients provision traced sessions while scrapers hammer /fleetz (JSON
// and prom), /metricsz, and the pprof index, and a chaos goroutine kills
// and restarts a backend. Invariants: the aggregation tolerates the dead
// backend (up=false, no error), the prom exposition lints clean even
// mid-chaos, and the whole circus leaks no goroutines.
func TestFleetObservabilityHammer(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet topology is not short")
	}
	baseline := runtime.NumGoroutine()
	image := chaosImage(t, "obshammer", 9303, 8, true)

	fl, err := StartChaosFleet(ChaosFleetConfig{
		Backends:         2,
		MaxConcurrent:    4,
		HealthInterval:   20 * time.Millisecond,
		ProbeTimeout:     200 * time.Millisecond,
		MarkdownCooldown: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	fl.Client.Route = &engarde.RouteHello{Tenant: "obshammer"}

	deadline := time.Now().Add(chaosSoakDuration())
	var (
		wg         sync.WaitGroup
		completed  atomic.Uint64
		scrapes    atomic.Uint64
		lintFails  atomic.Uint64
		deadViews  atomic.Uint64
		httpClient = &http.Client{Timeout: 2 * time.Second}
	)

	// Clients: traced sessions through the router, failover-tolerant.
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			dials := []func() (net.Conn, error){fl.Dial, fl.Dial}
			for time.Now().Before(deadline) {
				tr := obs.NewTrace("provision", nil)
				v, err := fl.Client.ProvisionFailover(dials, image, engarde.RetryPolicy{
					Attempts: 6, BaseDelay: time.Millisecond,
					MaxDelay: 20 * time.Millisecond, Seed: int64(c + 1), Trace: tr,
				})
				tr.Finish()
				if err == nil && v.Compliant {
					completed.Add(1)
				}
			}
		}(c)
	}

	// Scrapers: the fleet view in both formats, backend metrics, pprof.
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			urls := []string{
				fl.RouterAdminURL + "/fleetz",
				fl.RouterAdminURL + "/fleetz?format=prom",
				fl.RouterAdminURL + "/metricsz",
				fl.RouterAdminURL + "/tracez",
				fl.RouterAdminURL + "/debug/pprof/",
				fl.AdminURL(0) + "/metricsz",
				fl.AdminURL(1) + "/metricsz",
			}
			for i := 0; time.Now().Before(deadline); i++ {
				url := urls[i%len(urls)]
				resp, err := httpClient.Get(url)
				if err != nil {
					// Backend admin endpoints go dark when killed; that is
					// the chaos, not a failure.
					continue
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				scrapes.Add(1)
				switch {
				case strings.HasSuffix(url, "format=prom"):
					if errs := obs.Lint(strings.NewReader(string(body))); len(errs) > 0 {
						lintFails.Add(1)
						t.Errorf("mid-chaos /fleetz prom fails lint: %v", errs[0])
					}
				case strings.HasSuffix(url, "/fleetz"):
					var view fleet.FleetView
					if err := json.Unmarshal(body, &view); err != nil {
						t.Errorf("/fleetz JSON unparseable mid-chaos: %v", err)
						continue
					}
					if view.Fleet.BackendsUp < view.Fleet.BackendsTotal {
						deadViews.Add(1)
					}
				}
			}
		}()
	}

	// Chaos: backend 1 dies and returns, repeatedly.
	chaosDone := make(chan struct{})
	go func() {
		defer close(chaosDone)
		for time.Now().Before(deadline) {
			fl.Kill(1)
			time.Sleep(100 * time.Millisecond)
			for fl.Restart(1) != nil {
				time.Sleep(10 * time.Millisecond)
			}
			time.Sleep(250 * time.Millisecond)
		}
	}()

	wg.Wait()
	<-chaosDone
	t.Logf("hammer: %d sessions completed, %d scrapes, %d views saw a dead backend",
		completed.Load(), scrapes.Load(), deadViews.Load())
	if completed.Load() == 0 {
		t.Error("no session completed under the hammer")
	}
	if scrapes.Load() == 0 {
		t.Error("no scrape succeeded under the hammer")
	}
	if lintFails.Load() != 0 {
		t.Errorf("%d prom expositions failed lint mid-chaos", lintFails.Load())
	}

	// With backend 1 held dead, the aggregation must degrade, not break:
	// the view parses, marks it down with a reason, and keeps serving the
	// survivor's numbers.
	fl.Kill(1)
	resp, err := httpClient.Get(fl.RouterAdminURL + "/fleetz")
	if err != nil {
		t.Fatalf("/fleetz with a dead backend: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var view fleet.FleetView
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatalf("/fleetz JSON with a dead backend: %v\n%s", err, body)
	}
	if view.Fleet.BackendsTotal != 2 || view.Fleet.BackendsUp != 1 {
		t.Errorf("dead-backend view: up=%d total=%d, want 1/2",
			view.Fleet.BackendsUp, view.Fleet.BackendsTotal)
	}
	for _, b := range view.Backends {
		if b.Name == "b1" && (b.Up || b.Error == "") {
			t.Errorf("dead backend b1 not marked down with a reason: %+v", b)
		}
	}

	if err := fl.Restart(1); err != nil {
		t.Fatal(err)
	}
	if err := fl.Close(); err != nil {
		t.Errorf("fleet shutdown: %v", err)
	}
	waitFleetGoroutines(t, baseline)
}
