package toolchain

import (
	"fmt"
	"math/rand"

	"engarde/internal/x86"
)

// BundleSize is the NaCl instruction-bundle size: no instruction may cross
// a 32-byte boundary (paper §3).
const BundleSize = 32

// emitter wraps an x86.Assembler with NaCl bundle discipline: every
// instruction that would cross a 32-byte boundary is re-emitted after NOP
// padding. It also counts emitted instructions (alignment NOPs included) so
// the toolchain can size binaries to target instruction counts.
type emitter struct {
	asm    x86.Assembler
	nInst  int // instructions emitted, including alignment NOPs
	labels int // unique-label counter
}

// emit runs f (which must emit exactly one instruction) under the bundle
// rule.
func (e *emitter) emit(f func(a *x86.Assembler)) {
	start := e.asm.Len()
	nf, nl := e.asm.Marks()
	f(&e.asm)
	end := e.asm.Len()
	size := end - start
	if size == 0 {
		return
	}
	if start/BundleSize != (end-1)/BundleSize && size <= BundleSize {
		// Crossed a bundle boundary: roll back, pad, re-emit.
		e.asm.Truncate(start, nf, nl)
		pad := BundleSize - start%BundleSize
		e.asm.Nop(pad)
		e.nInst += nopCount(pad)
		f(&e.asm)
	}
	e.nInst++
}

// nopCount returns how many NOP instructions Assembler.Nop(n) produces.
func nopCount(n int) int {
	c := 0
	for n > 0 {
		k := n
		if k > 9 {
			k = 9
		}
		n -= k
		c++
	}
	return c
}

// padNops emits n bytes of NOP padding without ever letting a single NOP
// cross a bundle boundary.
func (e *emitter) padNops(n int) {
	for n > 0 {
		room := BundleSize - e.asm.Len()%BundleSize
		k := n
		if k > room {
			k = room
		}
		if k > 9 {
			k = 9
		}
		e.asm.Nop(k)
		e.nInst += nopCount(k)
		n -= k
	}
}

// alignBundle pads to the next bundle boundary (function starts are
// bundle-aligned).
func (e *emitter) alignBundle() {
	if rem := e.asm.Len() % BundleSize; rem != 0 {
		e.padNops(BundleSize - rem)
	}
}

// align pads to an arbitrary power-of-two boundary (IFCC jump tables).
func (e *emitter) align(n int) {
	if rem := e.asm.Len() % n; rem != 0 {
		e.padNops(n - rem)
	}
}

func (e *emitter) newLabel(prefix string) string {
	e.labels++
	return fmt.Sprintf("%s_%d", prefix, e.labels)
}

// scratchRegs are the registers the body generator may clobber freely.
// RCX is reserved for indirect-call pointers, RSP for the frame; RAX also
// serves the canary sequences.
var scratchRegs = []x86.Reg{
	x86.RegAX, x86.RegDX, x86.RegBX, x86.RegSI, x86.RegDI,
	x86.RegR8, x86.RegR9, x86.RegR10, x86.RegR11,
}

// scratchRegsASan additionally reserves R10/R11 for the sanitizer's shadow
// computation.
var scratchRegsASan = []x86.Reg{
	x86.RegAX, x86.RegDX, x86.RegBX, x86.RegSI, x86.RegDI,
	x86.RegR8, x86.RegR9,
}

// funcSpec describes one function to generate.
type funcSpec struct {
	name string
	// bodyInsts is the approximate number of body instructions to emit
	// (prologue/epilogue/instrumentation add a few more).
	bodyInsts int
	// directCallees are symbols this function calls directly, visited
	// round-robin at callRate.
	directCallees []string
	// indirectTargets are jump-table entry symbols (IFCC mode) or plain
	// function symbols used at indirect call sites.
	indirectTargets []string
	// callRate is the fraction of body slots that become direct calls.
	callRate float64
	// indirectRate is the fraction of body slots that become indirect
	// call sites.
	indirectRate float64
	// dataSyms are data-section symbols available for RIP-relative loads.
	dataSyms []string
}

// genOptions are whole-binary code-generation switches.
type genOptions struct {
	stackProtector bool
	// ifcc selects IFCC-instrumented indirect call sites; when false,
	// indirect calls are raw lea+call*.
	ifcc bool
	// ifccTableSym and ifccMask parametrize the IFCC guard sequence.
	ifccTableSym string
	ifccMask     int32
	// asan guards every frame-slot store with a shadow-byte check
	// (simplified AddressSanitizer instrumentation).
	asan bool
}

// ASan instrumentation constants: the shadow region symbol, its byte size
// (a power of two so the index can be masked in range), and the report
// function called on a poisoned access.
const (
	ASanShadowSym   = "g_asan_shadow"
	ASanShadowBytes = 4096
	ASanReportSym   = "__asan_report"
)

// pendingLabel is a forward-branch target awaiting definition.
type pendingLabel struct {
	label string
	after int // define once this many instructions have been emitted
}

// frameSize is the fixed stack frame of generated functions; slot 0 holds
// the stack-protector canary, slots 1.. are scratch spill space.
const frameSize = 0x20

// genFunction emits one complete function. The function is bundle-aligned;
// its start offset within the emitter is returned.
func (e *emitter) genFunction(spec funcSpec, opt genOptions, rng *rand.Rand) int {
	e.alignBundle()
	start := e.asm.Len()
	// The function name doubles as a local label so same-blob calls
	// resolve without the linker.
	e.asm.Label(spec.name)

	failLabel := e.newLabel("stackfail")
	// Prologue.
	e.emit(func(a *x86.Assembler) { a.SubRegImm8(x86.RegSP, frameSize) })
	if opt.stackProtector {
		// mov %fs:0x28, %rax ; mov %rax, (%rsp) — the exact Clang canary
		// prologue from paper §5.
		e.emit(func(a *x86.Assembler) { a.MovRegFS(x86.RegAX, 0x28) })
		e.emit(func(a *x86.Assembler) { a.MovMemReg(x86.Mem{Base: x86.RegSP, Index: x86.RegNone}, x86.RegAX) })
	}

	e.genBody(spec, opt, rng)

	// Epilogue.
	if opt.stackProtector {
		// mov %fs:0x28, %rax ; cmp (%rsp), %rax ; jne fail.
		e.emit(func(a *x86.Assembler) { a.MovRegFS(x86.RegAX, 0x28) })
		e.emit(func(a *x86.Assembler) { a.CmpRegMem(x86.RegAX, x86.Mem{Base: x86.RegSP, Index: x86.RegNone}) })
		e.emit(func(a *x86.Assembler) { a.JccLabel(x86.CondNE, failLabel) })
	}
	e.emit(func(a *x86.Assembler) { a.AddRegImm8(x86.RegSP, frameSize) })
	e.emit(func(a *x86.Assembler) { a.Ret() })
	if opt.stackProtector {
		e.asm.Label(failLabel)
		e.emit(func(a *x86.Assembler) { a.CallSym("__stack_chk_fail") })
		e.emit(func(a *x86.Assembler) { a.Ud2() })
	}
	return start
}

// genBody emits the pseudo-random function body.
func (e *emitter) genBody(spec funcSpec, opt genOptions, rng *rand.Rand) {
	var pending []pendingLabel
	callIdx := 0
	emitted := 0
	for emitted < spec.bodyInsts {
		// Define labels that are due, keeping branch targets valid
		// instruction starts.
		for len(pending) > 0 && pending[0].after <= emitted {
			e.asm.Label(pending[0].label)
			pending = pending[1:]
		}

		roll := rng.Float64()
		switch {
		case roll < spec.callRate && len(spec.directCallees) > 0:
			callee := spec.directCallees[callIdx%len(spec.directCallees)]
			callIdx++
			e.emit(func(a *x86.Assembler) { a.CallSym(callee) })
			emitted++
		case roll < spec.callRate+spec.indirectRate && len(spec.indirectTargets) > 0:
			target := spec.indirectTargets[rng.Intn(len(spec.indirectTargets))]
			emitted += e.genIndirectCall(target, opt)
		default:
			emitted += e.genALU(spec, opt, rng, emitted, &pending)
		}
	}
	// Flush remaining labels before the epilogue.
	for _, p := range pending {
		e.asm.Label(p.label)
	}
}

// emitASanGuard emits the simplified AddressSanitizer shadow check before
// a store to slot(%rsp):
//
//	lea   slot(%rsp), %r11
//	shr   $3, %r11
//	and   $(shadow-1), %r11
//	lea   g_asan_shadow(%rip), %r10
//	add   %r10, %r11
//	cmpb  $0, (%r11)
//	je    ok
//	call  __asan_report
//	ok:
//
// and returns the number of instructions emitted.
func (e *emitter) emitASanGuard(slot int64) int {
	ok := e.newLabel("asan_ok")
	e.emit(func(a *x86.Assembler) {
		a.LeaMem(x86.RegR11, x86.Mem{Base: x86.RegSP, Index: x86.RegNone, Disp: slot})
	})
	e.emit(func(a *x86.Assembler) { a.ShrRegImm8(x86.RegR11, 3) })
	e.emit(func(a *x86.Assembler) { a.AndRegImm32(x86.RegR11, ASanShadowBytes-1) })
	e.emit(func(a *x86.Assembler) { a.LeaRIP(x86.RegR10, ASanShadowSym) })
	e.emit(func(a *x86.Assembler) { a.AddRegReg(x86.RegR11, x86.RegR10) })
	e.emit(func(a *x86.Assembler) {
		a.CmpMem8Imm8(x86.Mem{Base: x86.RegR11, Index: x86.RegNone}, 0)
	})
	e.emit(func(a *x86.Assembler) { a.JccLabel(x86.CondE, ok) })
	e.emit(func(a *x86.Assembler) { a.CallSym(ASanReportSym) })
	e.asm.Label(ok)
	return 8
}

// genALU emits one ordinary instruction (or a compare+branch pair) and
// returns how many instructions it emitted.
func (e *emitter) genALU(spec funcSpec, opt genOptions, rng *rand.Rand, emitted int, pending *[]pendingLabel) int {
	pool := scratchRegs
	if opt.asan {
		pool = scratchRegsASan
	}
	reg := func() x86.Reg { return pool[rng.Intn(len(pool))] }
	switch rng.Intn(12) {
	case 0:
		dst := reg()
		imm := int32(rng.Intn(1 << 16))
		e.emit(func(a *x86.Assembler) { a.MovRegImm32(dst, imm) })
	case 1:
		dst, src := reg(), reg()
		e.emit(func(a *x86.Assembler) { a.MovRegReg(dst, src) })
	case 2:
		dst, src := reg(), reg()
		e.emit(func(a *x86.Assembler) { a.AddRegReg(dst, src) })
	case 3:
		// Second stack-store case: compilers emit dense stack traffic, and
		// the stack-protection policy's cost is driven by it.
		src := reg()
		slot := int64(8 + 8*rng.Intn(3))
		n := 1
		if opt.asan {
			n += e.emitASanGuard(slot)
		}
		e.emit(func(a *x86.Assembler) { a.MovMemReg(x86.Mem{Base: x86.RegSP, Index: x86.RegNone, Disp: slot}, src) })
		return n
	case 4:
		dst, src := reg(), reg()
		e.emit(func(a *x86.Assembler) { a.XorRegReg(dst, src) })
	case 5:
		dst, src := reg(), reg()
		e.emit(func(a *x86.Assembler) { a.ImulRegReg(dst, src) })
	case 6:
		dst, base := reg(), reg()
		disp := int64(rng.Intn(256))
		e.emit(func(a *x86.Assembler) { a.LeaMem(dst, x86.Mem{Base: base, Index: x86.RegNone, Disp: disp}) })
	case 7:
		// Spill to a frame slot (above the canary at (%rsp)).
		src := reg()
		slot := int64(8 + 8*rng.Intn(3))
		n := 1
		if opt.asan {
			n += e.emitASanGuard(slot)
		}
		e.emit(func(a *x86.Assembler) { a.MovMemReg(x86.Mem{Base: x86.RegSP, Index: x86.RegNone, Disp: slot}, src) })
		return n
	case 8:
		dst := reg()
		slot := int64(8 + 8*rng.Intn(3))
		e.emit(func(a *x86.Assembler) { a.MovRegMem(dst, x86.Mem{Base: x86.RegSP, Index: x86.RegNone, Disp: slot}) })
	case 9:
		if len(spec.dataSyms) > 0 {
			dst := reg()
			sym := spec.dataSyms[rng.Intn(len(spec.dataSyms))]
			e.emit(func(a *x86.Assembler) { a.LeaRIP(dst, sym) })
			break
		}
		dst := reg()
		e.emit(func(a *x86.Assembler) { a.ShlRegImm8(dst, int8(rng.Intn(5))) })
	case 10:
		dst := reg()
		e.emit(func(a *x86.Assembler) { a.AndRegImm32(dst, int32(rng.Intn(1<<12))) })
	default:
		// Compare + forward conditional branch to a label defined a few
		// instructions later.
		lhs := reg()
		label := e.newLabel("bb")
		cond := x86.Cond(rng.Intn(16))
		e.emit(func(a *x86.Assembler) { a.CmpRegImm8(lhs, int8(rng.Intn(100))) })
		e.emit(func(a *x86.Assembler) { a.JccLabel(cond, label) })
		*pending = append(*pending, pendingLabel{label: label, after: emitted + 3 + rng.Intn(8)})
		return 2
	}
	return 1
}

// genIndirectCall emits an indirect call site, IFCC-instrumented or raw,
// and returns the number of instructions emitted.
func (e *emitter) genIndirectCall(targetSym string, opt genOptions) int {
	// Load a plausible function pointer.
	e.emit(func(a *x86.Assembler) { a.LeaRIP(x86.RegCX, targetSym) })
	if !opt.ifcc {
		e.emit(func(a *x86.Assembler) { a.CallReg(x86.RegCX) })
		return 2
	}
	// The IFCC guard from paper §5:
	//   lea  table(%rip), %rax
	//   sub  %eax, %ecx
	//   and  $mask, %rcx
	//   add  %rax, %rcx
	//   callq *%rcx
	e.emit(func(a *x86.Assembler) { a.LeaRIP(x86.RegAX, opt.ifccTableSym) })
	e.emit(func(a *x86.Assembler) { a.SubRegReg32(x86.RegCX, x86.RegAX) })
	e.emit(func(a *x86.Assembler) { a.AndRegImm32(x86.RegCX, opt.ifccMask) })
	e.emit(func(a *x86.Assembler) { a.AddRegReg(x86.RegCX, x86.RegAX) })
	e.emit(func(a *x86.Assembler) { a.CallReg(x86.RegCX) })
	return 6
}
