// Package toolchain is the synthetic clang/LLVM + musl-libc + static linker
// of this reproduction. The paper compiles real applications (Nginx, SPEC,
// Memcached, ...) with clang/LLVM-3.6 as statically-linked position-
// independent executables against musl-libc 1.0.5, optionally instrumented
// with -fstack-protector-all or IFCC. Proprietary sources and a C compiler
// are not available here, so this package generates x86-64 machine code
// with the same structural properties the EnGarde pipeline inspects:
//
//   - real, decodable x86-64 instructions laid out under NaCl bundle rules;
//   - a call graph of app functions over a self-contained musl archive;
//   - ELF64 PIE images with symbol tables, .dynamic and RELA relocations;
//   - faithful Clang canary instrumentation and LLVM IFCC jump tables.
//
// Binaries are deterministic in Config.Seed, so experiments are exactly
// reproducible.
package toolchain

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"engarde/internal/elf64"
	"engarde/internal/x86"
)

// TextBase is the virtual address of .text in generated PIEs.
const TextBase = 0x1000

// JumpTableSymbolPrefix is the LLVM IFCC jump-table symbol prefix the
// policy module keys on.
const JumpTableSymbolPrefix = "__llvm_jump_instr_table_0_"

// Config describes one binary to build.
type Config struct {
	// Name is the program name (for symbols and diagnostics).
	Name string
	// Seed makes the build deterministic.
	Seed int64

	// MuslVersion selects the libc build; MuslV105 if empty.
	MuslVersion string
	// StackProtector applies Clang -fstack-protector-all instrumentation
	// to every function (app and libc).
	StackProtector bool
	// IFCC applies LLVM indirect function-call checks: call sites get the
	// lea/sub/and/add guard and indirect targets move behind a jump table.
	IFCC bool
	// Strip omits the symbol table (EnGarde auto-rejects such binaries).
	Strip bool
	// MixedCodeData embeds raw data bytes inside .text, violating
	// EnGarde's code/data page-separation requirement.
	MixedCodeData bool
	// EmitSyscall plants a SYSCALL instruction in one function — illegal
	// inside an enclave; for exercising the forbidden-instruction policy.
	EmitSyscall bool
	// ASan applies simplified AddressSanitizer instrumentation: every
	// frame-slot store is preceded by a shadow-byte check (the "other
	// tools, such as Google's AddressSanitizer" customization §5
	// mentions).
	ASan bool

	// NumFuncs is the number of application functions besides _start/main.
	NumFuncs int
	// AvgFuncInsts is the mean body size of an app function in
	// instructions; actual sizes vary by FuncSizeVariance.
	AvgFuncInsts int
	// FuncSizeVariance is the relative spread of function sizes (0..1).
	FuncSizeVariance float64
	// LibcCallRate is the fraction of body slots that become direct calls
	// into musl.
	LibcCallRate float64
	// LibcHot is the set of musl functions the program calls; defaults to
	// a realistic mix of small string/memory helpers and large formatted-
	// I/O and allocator routines.
	LibcHot []string
	// AppCallRate is the fraction of body slots that become direct calls
	// to other app functions.
	AppCallRate float64
	// IndirectRate is the fraction of body slots that become indirect
	// call sites.
	IndirectRate float64
	// NumIndirectTargets is how many app functions are indirect-callable
	// (the jump-table population under IFCC).
	NumIndirectTargets int

	// NumDataRelocs is the number of function-pointer words in .data, each
	// of which needs an R_X86_64_RELATIVE relocation.
	NumDataRelocs int
	// DataBytes is the size of the plain .data payload.
	DataBytes int
	// BssBytes is the .bss size.
	BssBytes int
}

// applyDefaults fills zero fields with small defaults.
func (c *Config) applyDefaults() {
	if c.MuslVersion == "" {
		c.MuslVersion = MuslV105
	}
	if c.NumFuncs == 0 {
		c.NumFuncs = 8
	}
	if c.AvgFuncInsts == 0 {
		c.AvgFuncInsts = 60
	}
	if c.LibcCallRate == 0 {
		c.LibcCallRate = 0.04
	}
	if c.AppCallRate == 0 {
		c.AppCallRate = 0.02
	}
	if c.NumIndirectTargets == 0 {
		c.NumIndirectTargets = 4
	}
	if c.DataBytes == 0 {
		c.DataBytes = 512
	}
	if c.BssBytes == 0 {
		c.BssBytes = 4096
	}
}

// Binary is a built executable plus build metadata used by the benchmark
// tables.
type Binary struct {
	Name  string
	Image []byte

	// NumInsts is the number of instructions emitted into .text (the
	// "#Inst." column of the paper's figures).
	NumInsts int
	// TextSize and DataSize are section sizes in bytes.
	TextSize int
	DataSize int
	// NumFuncs is the number of function symbols.
	NumFuncs int
	// NumRelocs is the number of dynamic relocations.
	NumRelocs int
	// JumpTableAddr/JumpTableSize describe the IFCC jump table (zero when
	// IFCC is off).
	JumpTableAddr uint64
	JumpTableSize uint64
}

// nextPow2 returns the smallest power of two ≥ n (minimum 2).
func nextPow2(n int) int {
	p := 2
	for p < n {
		p <<= 1
	}
	return p
}

// Build generates a complete ELF64 PIE according to cfg.
func Build(cfg Config) (*Binary, error) {
	cfg.applyDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	musl, err := buildMusl(cfg.MuslVersion, genOptions{stackProtector: cfg.StackProtector})
	if err != nil {
		return nil, err
	}

	// Plan the app shape.
	fnNames := make([]string, cfg.NumFuncs)
	fnSizes := make([]int, cfg.NumFuncs)
	for i := range fnNames {
		fnNames[i] = fmt.Sprintf("%s_fn_%03d", cfg.Name, i)
		spread := 1.0
		if cfg.FuncSizeVariance > 0 {
			spread = 1 + cfg.FuncSizeVariance*(2*rng.Float64()-1)
		}
		fnSizes[i] = int(float64(cfg.AvgFuncInsts) * spread)
		if fnSizes[i] < 4 {
			fnSizes[i] = 4
		}
	}
	// Indirect-callable functions are the LAST NumIndirectTargets app
	// functions, and only earlier functions emit indirect calls to them —
	// together with the forward-only direct-call rule this keeps the call
	// graph acyclic, so generated programs terminate.
	indirectTargets := fnNames
	if cfg.NumIndirectTargets < len(fnNames) {
		indirectTargets = fnNames[len(fnNames)-cfg.NumIndirectTargets:]
	}
	firstIndirectTarget := len(fnNames) - len(indirectTargets)

	// IFCC jump table geometry: 8-byte slots, power-of-two slot count,
	// mask = tableBytes - 8 (the paper's 0x1ff8 corresponds to 1024 slots).
	slots := nextPow2(len(indirectTargets))
	tableBytes := slots * 8
	opt := genOptions{
		stackProtector: cfg.StackProtector,
		ifcc:           cfg.IFCC,
		ifccTableSym:   JumpTableSymbolPrefix + "0",
		ifccMask:       int32(tableBytes - 8),
		asan:           cfg.ASan,
	}

	// Indirect call sites point at jump-table entries under IFCC, at the
	// functions themselves otherwise.
	callTargets := make([]string, len(indirectTargets))
	for i := range indirectTargets {
		if cfg.IFCC {
			callTargets[i] = fmt.Sprintf("%s%d", JumpTableSymbolPrefix, i)
		} else {
			callTargets[i] = indirectTargets[i]
		}
	}

	dataSyms := []string{"g_table", "g_buf", "g_state"}

	// Generate _start, main, the app functions and (under IFCC) the jump
	// table into one emitter; everything except musl calls and data
	// references resolves locally.
	var e emitter
	type placed struct {
		name       string
		start, end int
	}
	var appFuncs []placed

	mark := func(name string, start int) {
		appFuncs = append(appFuncs, placed{name: name, start: start})
		if n := len(appFuncs); n > 1 {
			appFuncs[n-2].end = start
		}
	}

	// _start: call main, call exit, trap. Under -fstack-protector-all even
	// the startup stub carries canary instrumentation, since the policy
	// checks every function symbol.
	e.alignBundle()
	start0 := e.asm.Len()
	e.asm.Label("_start")
	e.emit(func(a *x86.Assembler) { a.SubRegImm8(x86.RegSP, frameSize) })
	if cfg.StackProtector {
		e.emit(func(a *x86.Assembler) { a.MovRegFS(x86.RegAX, 0x28) })
		e.emit(func(a *x86.Assembler) { a.MovMemReg(x86.Mem{Base: x86.RegSP, Index: x86.RegNone}, x86.RegAX) })
	}
	e.emit(func(a *x86.Assembler) { a.CallSym("main") })
	e.emit(func(a *x86.Assembler) { a.XorRegReg(x86.RegDI, x86.RegDI) })
	e.emit(func(a *x86.Assembler) { a.CallSym("exit") })
	if cfg.StackProtector {
		e.emit(func(a *x86.Assembler) { a.MovRegFS(x86.RegAX, 0x28) })
		e.emit(func(a *x86.Assembler) { a.CmpRegMem(x86.RegAX, x86.Mem{Base: x86.RegSP, Index: x86.RegNone}) })
		e.emit(func(a *x86.Assembler) { a.JccLabel(x86.CondNE, "_start_stackfail") })
	}
	e.emit(func(a *x86.Assembler) { a.AddRegImm8(x86.RegSP, frameSize) })
	e.emit(func(a *x86.Assembler) { a.Ud2() })
	if cfg.StackProtector {
		e.asm.Label("_start_stackfail")
		e.emit(func(a *x86.Assembler) { a.CallSym("__stack_chk_fail") })
		e.emit(func(a *x86.Assembler) { a.Ud2() })
	}
	mark("_start", start0)

	libcHot := cfg.LibcHot
	if len(libcHot) == 0 {
		libcHot = []string{
			"memcpy", "strlen", "printf", "malloc", "free", "memset",
			"strcmp", "snprintf", "vfprintf", "qsort", "strtol", "realloc",
		}
	}

	// main calls a selection of app functions and libc.
	mainCallees := append([]string{}, fnNames...)
	if len(mainCallees) > 12 {
		mainCallees = mainCallees[:12]
	}
	mainCallees = append(mainCallees, "printf", "malloc")
	if cfg.EmitSyscall {
		mainCallees = append(mainCallees, "raw_syscall")
	}
	mainStart := e.genFunction(funcSpec{
		name:          "main",
		bodyInsts:     40 + rng.Intn(30),
		directCallees: mainCallees,
		callRate:      0.3,
		dataSyms:      dataSyms,
	}, opt, rng)
	mark("main", mainStart)

	if cfg.EmitSyscall {
		// A wrapper containing a SYSCALL instruction — illegal in-enclave.
		e.alignBundle()
		sysStart := e.asm.Len()
		e.asm.Label("raw_syscall")
		e.emit(func(a *x86.Assembler) { a.MovRegReg(x86.RegAX, x86.RegDI) })
		e.emit(func(a *x86.Assembler) { a.Syscall() })
		e.emit(func(a *x86.Assembler) { a.Ret() })
		mark("raw_syscall", sysStart)
	}

	if cfg.ASan {
		// The sanitizer's report function: never returns. Under
		// -fstack-protector-all it carries the canary pattern like every
		// other function.
		e.alignBundle()
		repStart := e.asm.Len()
		e.asm.Label(ASanReportSym)
		e.emit(func(a *x86.Assembler) { a.SubRegImm8(x86.RegSP, frameSize) })
		if cfg.StackProtector {
			e.emit(func(a *x86.Assembler) { a.MovRegFS(x86.RegAX, 0x28) })
			e.emit(func(a *x86.Assembler) { a.MovMemReg(x86.Mem{Base: x86.RegSP, Index: x86.RegNone}, x86.RegAX) })
		}
		e.emit(func(a *x86.Assembler) { a.CallSym("abort") })
		if cfg.StackProtector {
			e.emit(func(a *x86.Assembler) { a.MovRegFS(x86.RegAX, 0x28) })
			e.emit(func(a *x86.Assembler) { a.CmpRegMem(x86.RegAX, x86.Mem{Base: x86.RegSP, Index: x86.RegNone}) })
			e.emit(func(a *x86.Assembler) { a.JccLabel(x86.CondNE, "asan_report_stackfail") })
		}
		e.emit(func(a *x86.Assembler) { a.AddRegImm8(x86.RegSP, frameSize) })
		e.emit(func(a *x86.Assembler) { a.Ud2() })
		if cfg.StackProtector {
			e.asm.Label("asan_report_stackfail")
			e.emit(func(a *x86.Assembler) { a.CallSym("__stack_chk_fail") })
			e.emit(func(a *x86.Assembler) { a.Ud2() })
		}
		mark(ASanReportSym, repStart)
	}

	for i, name := range fnNames {
		// Per-function callee mix: libc round-robin + a couple of app
		// neighbours, proportioned to the configured rates.
		var callees []string
		total := cfg.LibcCallRate + cfg.AppCallRate
		if total > 0 {
			nLibc := 1 + rng.Intn(3)
			for k := 0; k < nLibc; k++ {
				callees = append(callees, libcHot[rng.Intn(len(libcHot))])
			}
			// App-internal calls form a forward DAG (fn_i may call only
			// fn_j with j > i), so generated programs terminate: there is
			// no recursion and local branches are forward-only.
			if cfg.AppCallRate > 0 && i+1 < cfg.NumFuncs {
				callees = append(callees, fnNames[i+1])
			}
		}
		fs := funcSpec{
			name:          name,
			bodyInsts:     fnSizes[i],
			directCallees: callees,
			callRate:      total,
			dataSyms:      dataSyms,
		}
		// Only functions outside the indirect-target set make indirect
		// calls (acyclicity).
		if i < firstIndirectTarget {
			fs.indirectTargets = callTargets
			fs.indirectRate = cfg.IndirectRate
		}
		start := e.genFunction(fs, opt, rng)
		mark(name, start)
	}

	// IFCC jump table: aligned to its own size so the and-mask stays
	// in-range, one 8-byte slot per target: jmpq <fn>; nopl (%rax).
	var tableStart int
	if cfg.IFCC {
		e.align(tableBytes)
		tableStart = e.asm.Len()
		for i := 0; i < slots; i++ {
			entrySym := fmt.Sprintf("%s%d", JumpTableSymbolPrefix, i)
			target := indirectTargets[i%len(indirectTargets)]
			e.asm.Label(entrySym)
			slotStart := e.asm.Len()
			e.emit(func(a *x86.Assembler) { a.JmpSym(target) })
			e.emit(func(a *x86.Assembler) { a.NopModRM() })
			if e.asm.Len()-slotStart != 8 {
				return nil, fmt.Errorf("toolchain: jump table slot %d is %d bytes, want 8", i, e.asm.Len()-slotStart)
			}
			mark(entrySym, slotStart)
		}
	}
	if len(appFuncs) > 0 {
		appFuncs[len(appFuncs)-1].end = e.asm.Len()
	}

	appBlob, appFixups, err := e.asm.Finish()
	if err != nil {
		return nil, fmt.Errorf("toolchain: linking %s: %w", cfg.Name, err)
	}

	// Layout: [.text: appBlob | pad | musl | (junk)] [.data .rela .dynamic
	// .bss]. The inter-blob padding must itself be valid NOP instructions:
	// EnGarde disassembles the whole text.
	muslStart := (len(appBlob) + BundleSize - 1) / BundleSize * BundleSize
	padInsts := 0
	text := make([]byte, muslStart+len(musl.blob))
	copy(text, appBlob)
	if gap := muslStart - len(appBlob); gap > 0 {
		var pa x86.Assembler
		pa.Nop(gap)
		pad, _, _ := pa.Finish()
		copy(text[len(appBlob):], pad)
		padInsts = nopCount(gap)
	}
	copy(text[muslStart:], musl.blob)
	if cfg.MixedCodeData {
		// Raw string data inside .text: undecodable bytes that violate
		// the code/data separation assumption.
		junk := []byte("\x06\x07\x62internal string table\x00\x00\xc4\xc5\xea mixed data")
		text = append(text, junk...)
	}
	textEnd := TextBase + uint64(len(text))

	// Symbol addresses.
	symAddr := make(map[string]uint64, len(appFuncs)+len(musl.funcs))
	type symDef struct {
		name       string
		addr, size uint64
	}
	var symbols []symDef
	for _, f := range appFuncs {
		a := TextBase + uint64(f.start)
		symAddr[f.name] = a
		symbols = append(symbols, symDef{f.name, a, uint64(f.end - f.start)})
	}
	for _, f := range musl.funcs {
		a := TextBase + uint64(muslStart) + uint64(f.off)
		symAddr[f.name] = a
		symbols = append(symbols, symDef{f.name, a, uint64(f.end - f.off)})
	}

	// Data section: pointer words (relocated), named blobs, payload.
	dataAddr := (textEnd + elf64.PageSize - 1) &^ (elf64.PageSize - 1)
	var data []byte
	var relas []elf64.Rela
	for i := 0; i < cfg.NumDataRelocs; i++ {
		target := symAddr[fnNames[i%len(fnNames)]]
		relas = append(relas, elf64.Rela{
			Off:    dataAddr + uint64(len(data)),
			Info:   uint64(elf64.RX8664Relative),
			Addend: int64(target),
		})
		var word [8]byte
		data = append(data, word[:]...)
	}
	for _, ds := range dataSyms {
		symAddr[ds] = dataAddr + uint64(len(data))
		blob := make([]byte, 64)
		rng.Read(blob)
		data = append(data, blob...)
	}
	var asanShadowAddr uint64
	if cfg.ASan {
		// The shadow region starts clean (all zero = everything
		// addressable).
		asanShadowAddr = dataAddr + uint64(len(data))
		symAddr[ASanShadowSym] = asanShadowAddr
		data = append(data, make([]byte, ASanShadowBytes)...)
	}
	payload := make([]byte, cfg.DataBytes)
	rng.Read(payload)
	data = append(data, payload...)
	for len(data)%8 != 0 { // keep the rela table 8-aligned
		data = append(data, 0)
	}

	relaAddr := dataAddr + uint64(len(data))
	relaBytes := elf64.EncodeRelas(relas)
	dynAddr := relaAddr + uint64(len(relaBytes))
	dynBytes := elf64.EncodeDynamic([]elf64.Dyn{
		{Tag: elf64.DTRela, Val: relaAddr},
		{Tag: elf64.DTRelasz, Val: uint64(len(relaBytes))},
		{Tag: elf64.DTRelaent, Val: elf64.RelaSize},
	})
	bssAddr := (dynAddr + uint64(len(dynBytes)) + 7) &^ 7

	// Resolve the app blob's external fixups now that addresses exist.
	for _, f := range appFixups {
		target, ok := symAddr[f.Sym]
		if !ok {
			return nil, fmt.Errorf("toolchain: %s: undefined symbol %q", cfg.Name, f.Sym)
		}
		fieldAddr := TextBase + uint64(f.Off)
		switch f.Kind {
		case x86.FixupRel32, x86.FixupRIP32:
			rel := int64(target) - int64(fieldAddr+4)
			binary.LittleEndian.PutUint32(text[f.Off:], uint32(rel))
		case x86.FixupAbs64:
			return nil, fmt.Errorf("toolchain: %s: absolute fixup for %q not supported in PIE text", cfg.Name, f.Sym)
		}
	}

	// Assemble the ELF image.
	var b elf64.Builder
	b.Entry = TextBase
	b.AddSection(elf64.BuildSection{Name: ".text", Type: elf64.SHTProgbits,
		Flags: elf64.SHFAlloc | elf64.SHFExecinstr, Addr: TextBase, Data: text, Align: 32})
	b.AddSection(elf64.BuildSection{Name: ".data", Type: elf64.SHTProgbits,
		Flags: elf64.SHFAlloc | elf64.SHFWrite, Addr: dataAddr, Data: data, Align: 8})
	b.AddSection(elf64.BuildSection{Name: ".rela.dyn", Type: elf64.SHTRela,
		Flags: elf64.SHFAlloc | elf64.SHFWrite, Addr: relaAddr, Data: relaBytes,
		Align: 8, Entsize: elf64.RelaSize})
	b.AddSection(elf64.BuildSection{Name: ".dynamic", Type: elf64.SHTDynamic,
		Flags: elf64.SHFAlloc | elf64.SHFWrite, Addr: dynAddr, Data: dynBytes,
		Align: 8, Entsize: elf64.DynSize})
	b.AddSection(elf64.BuildSection{Name: ".bss", Type: elf64.SHTNobits,
		Flags: elf64.SHFAlloc | elf64.SHFWrite, Addr: bssAddr,
		MemSize: uint64(cfg.BssBytes), Align: 8})
	if !cfg.Strip {
		for _, s := range symbols {
			b.AddSymbol(elf64.BuildSymbol{Name: s.name, Value: s.addr, Size: s.size,
				Info: elf64.STBGlobal<<4 | elf64.STTFunc, Section: ".text"})
		}
		for _, ds := range dataSyms {
			b.AddSymbol(elf64.BuildSymbol{Name: ds, Value: symAddr[ds], Size: 64,
				Info: elf64.STBGlobal<<4 | elf64.STTObject, Section: ".data"})
		}
		if cfg.ASan {
			b.AddSymbol(elf64.BuildSymbol{Name: ASanShadowSym, Value: asanShadowAddr,
				Size: ASanShadowBytes, Info: elf64.STBGlobal<<4 | elf64.STTObject, Section: ".data"})
		}
	}
	img, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("toolchain: building ELF for %s: %w", cfg.Name, err)
	}

	bin := &Binary{
		Name:      cfg.Name,
		Image:     img,
		NumInsts:  e.nInst + padInsts + muslInstCount(musl),
		TextSize:  len(text),
		DataSize:  len(data),
		NumFuncs:  len(symbols),
		NumRelocs: len(relas),
	}
	if cfg.IFCC {
		bin.JumpTableAddr = TextBase + uint64(tableStart)
		bin.JumpTableSize = uint64(tableBytes)
	}
	return bin, nil
}

// muslInstCount re-derives the instruction count of the musl blob; the
// count is cached on first use per (version, stackProtector) pair.
func muslInstCount(mb *muslBuild) int {
	// The blob is fully decodable by construction; count by decoding.
	n := 0
	off := 0
	for off < len(mb.blob) {
		in, err := x86.Decode(mb.blob[off:], uint64(off))
		if err != nil {
			// Cannot happen for generator output; treat the remainder as
			// one unit to keep counts sane if it ever does.
			return n + 1
		}
		off += in.Len
		n++
	}
	return n
}
