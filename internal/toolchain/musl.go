package toolchain

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
)

// Musl versions the synthetic toolchain can "link against". The paper's
// library-linking policy verifies linkage against v1.0.5 specifically; any
// other version produces different function bodies and therefore different
// hashes, which the policy must reject.
const (
	MuslV105 = "1.0.5" // the approved version (paper §5)
	MuslV110 = "1.1.0" // a different version, for rejection tests
)

// muslFunc describes one libc function of the synthetic musl build.
type muslFunc struct {
	name      string
	bodyInsts int
	callees   []string
}

// muslFuncs is the synthetic musl-libc function inventory. Sizes are
// loosely modelled on the real library (vfprintf is the giant, ctype
// predicates are tiny). Functions only ever call other musl functions, so
// the whole archive is internally position-independent: linked contiguously
// at any 32-byte-aligned address its bytes are identical, which is what
// makes per-function hash databases well-defined.
var muslFuncs = []muslFunc{
	{name: "memcpy", bodyInsts: 40},
	{name: "memset", bodyInsts: 30},
	{name: "memmove", bodyInsts: 50, callees: []string{"memcpy"}},
	{name: "memcmp", bodyInsts: 35},
	{name: "memchr", bodyInsts: 30},
	{name: "strlen", bodyInsts: 25},
	{name: "strcmp", bodyInsts: 30},
	{name: "strncmp", bodyInsts: 35},
	{name: "strcpy", bodyInsts: 25},
	{name: "strncpy", bodyInsts: 30},
	{name: "strcat", bodyInsts: 25, callees: []string{"strlen", "strcpy"}},
	{name: "strncat", bodyInsts: 30, callees: []string{"strlen"}},
	{name: "strchr", bodyInsts: 25},
	{name: "strrchr", bodyInsts: 30},
	{name: "strstr", bodyInsts: 60, callees: []string{"strlen", "memcmp"}},
	{name: "strtok", bodyInsts: 50, callees: []string{"strchr"}},
	{name: "strdup", bodyInsts: 25, callees: []string{"strlen", "malloc", "memcpy"}},
	{name: "malloc", bodyInsts: 120, callees: []string{"sbrk", "memset"}},
	{name: "free", bodyInsts: 90},
	{name: "calloc", bodyInsts: 50, callees: []string{"malloc", "memset"}},
	{name: "realloc", bodyInsts: 100, callees: []string{"malloc", "memcpy", "free"}},
	{name: "vfprintf", bodyInsts: 800, callees: []string{"memcpy", "strlen", "memset"}},
	{name: "printf", bodyInsts: 60, callees: []string{"vfprintf"}},
	{name: "fprintf", bodyInsts: 55, callees: []string{"vfprintf"}},
	{name: "sprintf", bodyInsts: 50, callees: []string{"vfprintf"}},
	{name: "snprintf", bodyInsts: 55, callees: []string{"vfprintf"}},
	{name: "puts", bodyInsts: 30, callees: []string{"strlen", "write"}},
	{name: "putchar", bodyInsts: 15, callees: []string{"write"}},
	{name: "getchar", bodyInsts: 15, callees: []string{"read"}},
	{name: "fgets", bodyInsts: 60, callees: []string{"read", "memchr", "memcpy"}},
	{name: "fopen", bodyInsts: 100, callees: []string{"open", "malloc"}},
	{name: "fclose", bodyInsts: 60, callees: []string{"close", "free"}},
	{name: "fread", bodyInsts: 80, callees: []string{"read", "memcpy"}},
	{name: "fwrite", bodyInsts: 80, callees: []string{"write", "memcpy"}},
	{name: "fseek", bodyInsts: 50, callees: []string{"lseek"}},
	{name: "qsort", bodyInsts: 150, callees: []string{"memcpy"}},
	{name: "bsearch", bodyInsts: 40},
	{name: "atoi", bodyInsts: 30, callees: []string{"strtol"}},
	{name: "atol", bodyInsts: 30, callees: []string{"strtol"}},
	{name: "strtol", bodyInsts: 120, callees: []string{"isspace", "isdigit"}},
	{name: "strtoul", bodyInsts: 110, callees: []string{"isspace", "isdigit"}},
	{name: "abs", bodyInsts: 10},
	{name: "labs", bodyInsts: 10},
	{name: "rand", bodyInsts: 20},
	{name: "srand", bodyInsts: 10},
	{name: "time", bodyInsts: 20},
	{name: "clock", bodyInsts: 15},
	{name: "isdigit", bodyInsts: 8},
	{name: "isalpha", bodyInsts: 8},
	{name: "isspace", bodyInsts: 8},
	{name: "toupper", bodyInsts: 10},
	{name: "tolower", bodyInsts: 10},
	{name: "exit", bodyInsts: 40, callees: []string{"fclose"}},
	{name: "abort", bodyInsts: 15},
	{name: "getenv", bodyInsts: 40, callees: []string{"strncmp", "strlen"}},
	{name: "setenv", bodyInsts: 60, callees: []string{"malloc", "strlen", "memcpy"}},
	{name: "write", bodyInsts: 25},
	{name: "read", bodyInsts: 25},
	{name: "open", bodyInsts: 30},
	{name: "close", bodyInsts: 20},
	{name: "lseek", bodyInsts: 25},
	{name: "mmap", bodyInsts: 45},
	{name: "munmap", bodyInsts: 25},
	{name: "sbrk", bodyInsts: 25},
	{name: "brk", bodyInsts: 20},
	{name: "pthread_mutex_lock", bodyInsts: 60},
	{name: "pthread_mutex_unlock", bodyInsts: 40},
	{name: "pthread_create", bodyInsts: 140, callees: []string{"malloc", "mmap", "memset"}},
	{name: "pthread_join", bodyInsts: 70},
	{name: "__errno_location", bodyInsts: 10},
	{name: "__stack_chk_fail", bodyInsts: 8, callees: []string{"abort"}},
}

// MuslFunctionNames returns the names of all functions in the synthetic
// musl build, in link order.
func MuslFunctionNames() []string {
	out := make([]string, len(muslFuncs))
	for i, f := range muslFuncs {
		out[i] = f.name
	}
	return out
}

// muslSeed derives the per-function RNG seed; the version string is part of
// the seed so different musl versions have different machine code.
func muslSeed(version, name string) int64 {
	h := sha256.Sum256([]byte("musl-" + version + "/" + name))
	return int64(binary.LittleEndian.Uint64(h[:8]))
}

// placedFunc records a generated function inside a blob.
type placedFunc struct {
	name string
	off  int // blob-relative start offset, 32-byte aligned
	end  int // blob-relative end offset (start of next function or blob end)
}

// muslBuild is a fully linked (blob-internal) musl archive.
type muslBuild struct {
	version string
	blob    []byte
	funcs   []placedFunc
}

// muslCache memoizes archive builds; a muslBuild is immutable once
// constructed, so sharing across goroutines is safe.
var muslCache sync.Map // key string → *muslBuild

// buildMusl returns the (cached) musl archive for a version/protection
// pair.
func buildMusl(version string, opt genOptions) (*muslBuild, error) {
	key := fmt.Sprintf("%s/sp=%v", version, opt.stackProtector)
	if v, ok := muslCache.Load(key); ok {
		return v.(*muslBuild), nil
	}
	mb, err := buildMuslUncached(version, opt)
	if err != nil {
		return nil, err
	}
	v, _ := muslCache.LoadOrStore(key, mb)
	return v.(*muslBuild), nil
}

// buildMuslUncached generates the whole musl archive as one contiguous
// blob with all internal calls resolved blob-relatively. opt.stackProtector
// controls whether libc itself carries canaries, matching how the
// benchmark binary as a whole is compiled for each experiment.
func buildMuslUncached(version string, opt genOptions) (*muslBuild, error) {
	var e emitter
	mb := &muslBuild{version: version}
	starts := make([]int, len(muslFuncs))
	for i, mf := range muslFuncs {
		rng := rand.New(rand.NewSource(muslSeed(version, mf.name)))
		spec := funcSpec{
			name:          mf.name,
			bodyInsts:     mf.bodyInsts,
			directCallees: mf.callees,
			callRate:      0.05,
		}
		// musl's internal calls resolve as local labels, so the blob is
		// placement-invariant.
		starts[i] = e.genFunction(spec, genOptions{stackProtector: opt.stackProtector}, rng)
	}
	blob, fixups, err := e.asm.Finish()
	if err != nil {
		return nil, fmt.Errorf("toolchain: linking musl %s: %w", version, err)
	}
	if len(fixups) != 0 {
		return nil, fmt.Errorf("toolchain: musl %s has %d unresolved externals (must be self-contained)", version, len(fixups))
	}
	mb.blob = blob
	for i, mf := range muslFuncs {
		end := len(blob)
		if i+1 < len(starts) {
			end = starts[i+1]
		}
		mb.funcs = append(mb.funcs, placedFunc{name: mf.name, off: starts[i], end: end})
	}
	return mb, nil
}

// HashDB is the library-linking policy database: function name → SHA-256
// of the function's linked bytes (from its start to the start of the next
// function, the same span the policy hashes in the executable).
type HashDB map[string][sha256.Size]byte

// MuslHashDB builds the reference hash database for a musl version, as the
// cloud provider would from its approved libc build (paper §5: "we first
// generate the SHA-256 hashes of all the functions of musl-libc v1.0.5").
func MuslHashDB(version string, stackProtector bool) (HashDB, error) {
	mb, err := buildMusl(version, genOptions{stackProtector: stackProtector})
	if err != nil {
		return nil, err
	}
	db := make(HashDB, len(mb.funcs))
	for _, f := range mb.funcs {
		db[f.name] = sha256.Sum256(mb.blob[f.off:f.end])
	}
	return db, nil
}
