package toolchain

import (
	"bytes"
	"crypto/sha256"
	"strings"
	"testing"

	"engarde/internal/elf64"
	"engarde/internal/symtab"
	"engarde/internal/x86"
)

func smallConfig() Config {
	return Config{
		Name: "t", Seed: 7,
		NumFuncs: 6, AvgFuncInsts: 50, FuncSizeVariance: 0.5,
		LibcCallRate: 0.05, AppCallRate: 0.02, IndirectRate: 0.01,
		NumIndirectTargets: 3, NumDataRelocs: 5,
	}
}

func build(t *testing.T, cfg Config) *Binary {
	t.Helper()
	bin, err := Build(cfg)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return bin
}

func parse(t *testing.T, bin *Binary) *elf64.File {
	t.Helper()
	f, err := elf64.Parse(bin.Image)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return f
}

func TestBuildProducesValidPIE(t *testing.T) {
	bin := build(t, smallConfig())
	f := parse(t, bin)
	if err := f.VerifyPIE(); err != nil {
		t.Fatalf("VerifyPIE: %v", err)
	}
	if f.Header.Entry != TextBase {
		t.Errorf("entry = %#x", f.Header.Entry)
	}
	texts := f.TextSections()
	if len(texts) != 1 {
		t.Fatalf("%d text sections", len(texts))
	}
	if len(texts[0].Data) != bin.TextSize {
		t.Errorf("text size %d != %d", len(texts[0].Data), bin.TextSize)
	}
}

func TestTextFullyDecodable(t *testing.T) {
	bin := build(t, smallConfig())
	f := parse(t, bin)
	text := f.Section(".text")
	insts, err := x86.DecodeAll(text.Data, text.Addr)
	if err != nil {
		t.Fatalf("DecodeAll: %v", err)
	}
	if len(insts) != bin.NumInsts {
		t.Errorf("decoded %d instructions, toolchain reported %d", len(insts), bin.NumInsts)
	}
}

func TestBundleInvariant(t *testing.T) {
	// No instruction may cross a 32-byte boundary — the NaCl rule the
	// whole pipeline depends on.
	bin := build(t, Config{Name: "b", Seed: 3, NumFuncs: 20, AvgFuncInsts: 120, IFCC: true, IndirectRate: 0.02})
	f := parse(t, bin)
	text := f.Section(".text")
	insts, err := x86.DecodeAll(text.Data, text.Addr)
	if err != nil {
		t.Fatalf("DecodeAll: %v", err)
	}
	for _, in := range insts {
		startB := in.Addr / BundleSize
		endB := (in.Addr + uint64(in.Len) - 1) / BundleSize
		if startB != endB {
			t.Fatalf("instruction at %#x (%d bytes) crosses a bundle boundary: %s",
				in.Addr, in.Len, in.String())
		}
	}
}

func TestDeterministicBuilds(t *testing.T) {
	a := build(t, smallConfig())
	b := build(t, smallConfig())
	if !bytes.Equal(a.Image, b.Image) {
		t.Error("same seed must produce identical binaries")
	}
	cfg := smallConfig()
	cfg.Seed = 8
	c := build(t, cfg)
	if bytes.Equal(a.Image, c.Image) {
		t.Error("different seeds should produce different binaries")
	}
}

func TestSymbolTable(t *testing.T) {
	bin := build(t, smallConfig())
	f := parse(t, bin)
	tab, err := symtab.FromELF(f)
	if err != nil {
		t.Fatalf("FromELF: %v", err)
	}
	for _, want := range []string{"_start", "main", "memcpy", "printf", "__stack_chk_fail", "t_fn_000"} {
		if _, ok := tab.AddrOf(want); !ok {
			t.Errorf("symbol %q missing", want)
		}
	}
	// Every function symbol must start at a decodable instruction.
	text := f.Section(".text")
	for _, fn := range tab.Functions() {
		off := fn.Addr - text.Addr
		if _, err := x86.Decode(text.Data[off:], fn.Addr); err != nil {
			t.Errorf("function %s at %#x does not start at a valid instruction: %v", fn.Name, fn.Addr, err)
		}
	}
}

func TestStrippedBuild(t *testing.T) {
	cfg := smallConfig()
	cfg.Strip = true
	bin := build(t, cfg)
	f := parse(t, bin)
	if _, err := f.Symbols(); err != elf64.ErrNoSymtab {
		t.Errorf("Symbols on stripped = %v, want ErrNoSymtab", err)
	}
}

func TestMixedCodeDataBuildUndecodable(t *testing.T) {
	cfg := smallConfig()
	cfg.MixedCodeData = true
	bin := build(t, cfg)
	f := parse(t, bin)
	text := f.Section(".text")
	if _, err := x86.DecodeAll(text.Data, text.Addr); err == nil {
		t.Error("mixed code/data text should fail full disassembly")
	}
}

func TestRelocationsPointIntoText(t *testing.T) {
	bin := build(t, smallConfig())
	f := parse(t, bin)
	relas, err := f.Relocations()
	if err != nil {
		t.Fatal(err)
	}
	if len(relas) != bin.NumRelocs {
		t.Fatalf("got %d relocations, want %d", len(relas), bin.NumRelocs)
	}
	text := f.Section(".text")
	data := f.Section(".data")
	for _, r := range relas {
		if r.RelaType() != elf64.RX8664Relative {
			t.Errorf("unexpected reloc type %d", r.RelaType())
		}
		if r.Off < data.Addr || r.Off >= data.Addr+data.Size {
			t.Errorf("reloc site %#x outside .data", r.Off)
		}
		tgt := uint64(r.Addend)
		if tgt < text.Addr || tgt >= text.Addr+text.Size {
			t.Errorf("reloc target %#x outside .text", tgt)
		}
	}
}

func TestStackProtectorInstrumentation(t *testing.T) {
	cfg := smallConfig()
	cfg.StackProtector = true
	bin := build(t, cfg)
	f := parse(t, bin)
	text := f.Section(".text")
	tab, err := symtab.FromELF(f)
	if err != nil {
		t.Fatal(err)
	}
	mainAddr, _ := tab.AddrOf("main")
	nextAddr, _ := tab.NextFuncAfter(mainAddr)
	body := text.Data[mainAddr-text.Addr : nextAddr-text.Addr]
	insts, err := x86.DecodeAll(body, mainAddr)
	if err != nil {
		t.Fatal(err)
	}
	// Expect the canary load somewhere near the top.
	foundLoad, foundCmp, foundCall := false, false, false
	failAddr, _ := tab.AddrOf("__stack_chk_fail")
	for _, in := range insts {
		if in.Op == x86.OpMov && in.NArgs == 2 && in.Args[1].IsSegDisp(x86.SegFS, 0x28) {
			foundLoad = true
		}
		if in.Op == x86.OpCmp && in.NArgs == 2 && in.Args[1].IsMemBaseDisp(x86.RegSP, 0) {
			foundCmp = true
		}
		if in.IsDirectCall() {
			if tgt, _ := in.BranchTarget(); tgt == failAddr {
				foundCall = true
			}
		}
	}
	if !foundLoad || !foundCmp || !foundCall {
		t.Errorf("canary pattern incomplete: load=%v cmp=%v call=%v", foundLoad, foundCmp, foundCall)
	}
}

func TestIFCCJumpTable(t *testing.T) {
	cfg := smallConfig()
	cfg.IFCC = true
	cfg.IndirectRate = 0.05
	bin := build(t, cfg)
	if bin.JumpTableAddr == 0 || bin.JumpTableSize == 0 {
		t.Fatal("jump table metadata missing")
	}
	if bin.JumpTableAddr%bin.JumpTableSize != 0 {
		t.Errorf("jump table at %#x not aligned to its size %#x", bin.JumpTableAddr, bin.JumpTableSize)
	}
	f := parse(t, bin)
	tab, err := symtab.FromELF(f)
	if err != nil {
		t.Fatal(err)
	}
	// The table base symbol exists and matches the metadata.
	base, ok := tab.AddrOf(JumpTableSymbolPrefix + "0")
	if !ok || base != bin.JumpTableAddr {
		t.Fatalf("table base symbol = %#x, %v; want %#x", base, ok, bin.JumpTableAddr)
	}
	// Each slot is jmpq rel32 + nopl (%rax), 8 bytes, targeting a
	// function start.
	text := f.Section(".text")
	nSlots := int(bin.JumpTableSize / 8)
	for i := 0; i < nSlots; i++ {
		slotAddr := bin.JumpTableAddr + uint64(i*8)
		off := slotAddr - text.Addr
		jmp, err := x86.Decode(text.Data[off:], slotAddr)
		if err != nil || jmp.Op != x86.OpJmp {
			t.Fatalf("slot %d: not a jmp (%v, %v)", i, jmp.Op, err)
		}
		tgt, _ := jmp.BranchTarget()
		if name, ok := tab.NameAt(tgt); !ok || strings.HasPrefix(name, JumpTableSymbolPrefix) {
			t.Errorf("slot %d target %#x (%q) is not a plain function start", i, tgt, name)
		}
		nop, err := x86.Decode(text.Data[off+5:], slotAddr+5)
		if err != nil || nop.Op != x86.OpNop || nop.Len != 3 {
			t.Errorf("slot %d: filler is not nopl (%%rax)", i)
		}
	}
}

func TestMuslHashDBConsistency(t *testing.T) {
	// The DB computed standalone must equal hashes of the musl functions
	// inside a linked executable (position independence of the archive).
	db, err := MuslHashDB(MuslV105, false)
	if err != nil {
		t.Fatal(err)
	}
	bin := build(t, smallConfig())
	f := parse(t, bin)
	tab, err := symtab.FromELF(f)
	if err != nil {
		t.Fatal(err)
	}
	text := f.Section(".text")
	checked := 0
	for _, name := range []string{"memcpy", "strlen", "vfprintf", "__stack_chk_fail", "pthread_create"} {
		addr, ok := tab.AddrOf(name)
		if !ok {
			t.Fatalf("symbol %s missing", name)
		}
		end, ok := tab.NextFuncAfter(addr)
		if !ok {
			end = text.Addr + text.Size
		}
		got := sha256Of(text.Data[addr-text.Addr : end-text.Addr])
		if got != db[name] {
			t.Errorf("%s: executable hash differs from reference DB", name)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("nothing checked")
	}
}

func TestMuslVersionsDiffer(t *testing.T) {
	db105, err := MuslHashDB(MuslV105, false)
	if err != nil {
		t.Fatal(err)
	}
	db110, err := MuslHashDB(MuslV110, false)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for name, h := range db105 {
		if db110[name] == h {
			same++
		}
	}
	if same != 0 {
		t.Errorf("%d functions identical across musl versions; hashes must differ", same)
	}
}

func TestInstrumentationGrowsInstCount(t *testing.T) {
	base := build(t, smallConfig())
	sp := smallConfig()
	sp.StackProtector = true
	spBin := build(t, sp)
	if spBin.NumInsts <= base.NumInsts {
		t.Errorf("stack protector should add instructions: %d vs %d", spBin.NumInsts, base.NumInsts)
	}
	ic := smallConfig()
	ic.IFCC = true
	icBin := build(t, ic)
	if icBin.NumInsts <= base.NumInsts {
		t.Errorf("IFCC should add instructions: %d vs %d", icBin.NumInsts, base.NumInsts)
	}
}

func sha256Of(b []byte) [32]byte {
	return sha256.Sum256(b)
}
