package workload

import (
	"testing"

	"engarde/internal/elf64"
	"engarde/internal/x86"
)

// paperInsts is the "#Inst." column of Figure 3 (the plain builds).
var paperInsts = map[string]int{
	"Nginx":     262_228,
	"401.bzip2": 24_112,
	"Graph-500": 100_411,
	"429.mcf":   12_903,
	"Memcached": 71_437,
	"Netperf":   51_403,
	"Otp-gen":   28_125,
}

func TestSpecsMatchPaperSizes(t *testing.T) {
	for _, s := range Specs() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			bin, err := s.Build(Plain)
			if err != nil {
				t.Fatal(err)
			}
			want := paperInsts[s.Name]
			ratio := float64(bin.NumInsts) / float64(want)
			if ratio < 0.85 || ratio > 1.15 {
				t.Errorf("#Inst = %d, paper reports %d (ratio %.2f outside ±15%%)",
					bin.NumInsts, want, ratio)
			}
		})
	}
}

func TestVariantsAddInstructions(t *testing.T) {
	s, err := ByName("429.mcf")
	if err != nil {
		t.Fatal(err)
	}
	plain, err := s.Build(Plain)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := s.Build(StackProtected)
	if err != nil {
		t.Fatal(err)
	}
	ic, err := s.Build(IFCCProtected)
	if err != nil {
		t.Fatal(err)
	}
	if sp.NumInsts <= plain.NumInsts {
		t.Errorf("stackprot %d ≤ plain %d", sp.NumInsts, plain.NumInsts)
	}
	if ic.NumInsts <= plain.NumInsts {
		t.Errorf("ifcc %d ≤ plain %d", ic.NumInsts, plain.NumInsts)
	}
	if ic.JumpTableAddr == 0 {
		t.Error("IFCC build missing jump table")
	}
	if plain.JumpTableAddr != 0 {
		t.Error("plain build should not have a jump table")
	}
}

func TestAllBenchmarksParseAndDecode(t *testing.T) {
	for _, s := range Specs() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			bin, err := s.Build(Plain)
			if err != nil {
				t.Fatal(err)
			}
			f, err := elf64.Parse(bin.Image)
			if err != nil {
				t.Fatal(err)
			}
			if err := f.VerifyPIE(); err != nil {
				t.Fatal(err)
			}
			text := f.Section(".text")
			insts, err := x86.DecodeAll(text.Data, text.Addr)
			if err != nil {
				t.Fatalf("disassembly failed: %v", err)
			}
			if len(insts) != bin.NumInsts {
				t.Errorf("decoded %d != reported %d", len(insts), bin.NumInsts)
			}
		})
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("Redis"); err == nil {
		t.Error("expected error for unknown benchmark")
	}
}

func TestFunctionProfileShapes(t *testing.T) {
	// The structural premise of the Figure-4 inversion: bzip2's average
	// function is far larger than Nginx's.
	nginx, err := ByName("Nginx")
	if err != nil {
		t.Fatal(err)
	}
	bzip2, err := ByName("401.bzip2")
	if err != nil {
		t.Fatal(err)
	}
	if bzip2.Base.AvgFuncInsts < 8*nginx.Base.AvgFuncInsts {
		t.Errorf("bzip2 avg function (%d) should dwarf nginx's (%d)",
			bzip2.Base.AvgFuncInsts, nginx.Base.AvgFuncInsts)
	}
}
