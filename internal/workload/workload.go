// Package workload defines the seven benchmark programs of the paper's
// evaluation (§5) — Nginx, 401.bzip2, Graph-500, 429.mcf, Memcached,
// Netperf and Otp-gen — as synthetic-toolchain build specifications.
//
// The knobs per benchmark encode the structural properties that drive
// EnGarde's costs and that differ between the real programs:
//
//   - total instruction count (the "#Inst." column of Figures 3-5);
//   - function-size profile: Nginx is thousands of small handlers, while
//     401.bzip2 is a handful of enormous compress/decompress loops — which
//     is why bzip2's stack-protection check costs MORE than Nginx's despite
//     being 11× smaller (the per-function pattern scan is superlinear in
//     function size);
//   - libc call density (drives the library-linking check, which hashes
//     the callee per call site);
//   - indirect-call density (drives the IFCC check);
//   - data-relocation count (drives loading: Nginx's large module/command
//     pointer tables explain its 30× larger loading column).
package workload

import (
	"fmt"

	"engarde/internal/toolchain"
)

// Spec is one benchmark program.
type Spec struct {
	// Name as it appears in the paper's tables.
	Name string
	// Base is the uninstrumented toolchain configuration; instrumentation
	// flags are layered on per experiment.
	Base toolchain.Config
}

// Specs returns the seven paper benchmarks in table order.
func Specs() []Spec {
	return []Spec{
		{
			// An HTTP server: ~1200 small-to-medium handler functions,
			// heavy libc use, very large initialized pointer tables
			// (modules, commands, MIME types).
			Name: "Nginx",
			Base: toolchain.Config{
				Name: "nginx", Seed: 101,
				NumFuncs: 680, AvgFuncInsts: 320, FuncSizeVariance: 0.6,
				LibcCallRate: 0.115, AppCallRate: 0.045, IndirectRate: 0.004,
				NumIndirectTargets: 64,
				NumDataRelocs:      2460, DataBytes: 16384, BssBytes: 65536,
			},
		},
		{
			// SPEC CPU2006 bzip2: a few gigantic block-sort/huffman
			// functions, almost no libc calls in the hot code.
			Name: "401.bzip2",
			Base: toolchain.Config{
				Name: "bzip2", Seed: 102,
				NumFuncs: 3, AvgFuncInsts: 4840, FuncSizeVariance: 0.25,
				LibcCallRate: 0.019, AppCallRate: 0.0085, IndirectRate: 0.001,
				NumIndirectTargets: 2,
				NumDataRelocs:      4, DataBytes: 8192, BssBytes: 1 << 20,
			},
		},
		{
			// Graph-500: medium count of medium kernels (BFS, generators).
			Name: "Graph-500",
			Base: toolchain.Config{
				Name: "graph500", Seed: 103,
				NumFuncs: 420, AvgFuncInsts: 205, FuncSizeVariance: 0.5,
				LibcCallRate: 0.035, AppCallRate: 0.04, IndirectRate: 0.002,
				NumIndirectTargets: 8,
				NumDataRelocs:      8, DataBytes: 4096, BssBytes: 1 << 20,
			},
		},
		{
			// SPEC CPU2006 mcf: small solver with a few medium functions
			// and (relative to its size) high libc traffic.
			Name: "429.mcf",
			Base: toolchain.Config{
				Name: "mcf", Seed: 104,
				NumFuncs: 18, AvgFuncInsts: 420, FuncSizeVariance: 0.4,
				LibcCallRate: 0.22, AppCallRate: 0.04, IndirectRate: 0.001,
				NumIndirectTargets: 2,
				NumDataRelocs:      5, DataBytes: 2048, BssBytes: 1 << 18,
			},
		},
		{
			// Memcached: mid-size event-driven server, libc-heavy, with
			// sizeable dispatch functions.
			Name: "Memcached",
			Base: toolchain.Config{
				Name: "memcached", Seed: 105,
				NumFuncs: 115, AvgFuncInsts: 515, FuncSizeVariance: 0.6,
				LibcCallRate: 0.12, AppCallRate: 0.03, IndirectRate: 0.003,
				NumIndirectTargets: 16,
				NumDataRelocs:      78, DataBytes: 8192, BssBytes: 1 << 19,
			},
		},
		{
			// Netperf: network benchmark with chunky test-driver
			// functions and large option tables.
			Name: "Netperf",
			Base: toolchain.Config{
				Name: "netperf", Seed: 106,
				NumFuncs: 97, AvgFuncInsts: 460, FuncSizeVariance: 0.5,
				LibcCallRate: 0.14, AppCallRate: 0.03, IndirectRate: 0.002,
				NumIndirectTargets: 8,
				NumDataRelocs:      276, DataBytes: 8192, BssBytes: 65536,
			},
		},
		{
			// otp-gen: a password generator: few functions, several large
			// (crypto rounds), frequent libc formatting calls.
			Name: "Otp-gen",
			Base: toolchain.Config{
				Name: "otpgen", Seed: 107,
				NumFuncs: 19, AvgFuncInsts: 980, FuncSizeVariance: 0.5,
				LibcCallRate: 0.072, AppCallRate: 0.015, IndirectRate: 0.002,
				NumIndirectTargets: 4,
				NumDataRelocs:      22, DataBytes: 2048, BssBytes: 32768,
			},
		},
	}
}

// ByName returns the spec with the given table name.
func ByName(name string) (Spec, error) {
	for _, s := range Specs() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// Variant describes which instrumentation a build carries; each of the
// paper's three policy experiments uses one.
type Variant int

// Build variants.
const (
	// Plain is the baseline build (musl-linked, no extra instrumentation)
	// used for the library-linking experiment (Figure 3).
	Plain Variant = iota + 1
	// StackProtected is compiled with -fstack-protector-all (Figure 4).
	StackProtected
	// IFCCProtected carries LLVM indirect function-call checks (Figure 5).
	IFCCProtected
)

func (v Variant) String() string {
	switch v {
	case Plain:
		return "plain"
	case StackProtected:
		return "stackprot"
	case IFCCProtected:
		return "ifcc"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// Build builds the benchmark in the given variant.
func (s Spec) Build(v Variant) (*toolchain.Binary, error) {
	cfg := s.Base
	switch v {
	case StackProtected:
		cfg.StackProtector = true
	case IFCCProtected:
		cfg.IFCC = true
	case Plain:
		// no instrumentation
	default:
		return nil, fmt.Errorf("workload: unknown variant %d", int(v))
	}
	bin, err := toolchain.Build(cfg)
	if err != nil {
		return nil, fmt.Errorf("workload: building %s (%s): %w", s.Name, v, err)
	}
	return bin, nil
}
