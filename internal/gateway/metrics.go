package gateway

import (
	"sync"
	"time"

	"engarde/internal/cycles"
	"engarde/internal/obs"
)

// metrics is the gateway's registry-backed instrument set. Every counter
// and histogram the workers touch on the hot path is a lock-free atomic
// instrument from internal/obs; values owned by other objects (cache
// sizes, cycle totals, queue depth) are registered as live-read functions,
// so /metricsz and Stats() can never disagree — both read the same
// underlying state.
type metrics struct {
	reg *obs.Registry

	accepted *obs.Counter
	shed     *obs.Counter
	rejected *obs.Counter
	timeouts *obs.Counter

	served       *obs.Counter
	compliant    *obs.Counter
	nonCompliant *obs.Counter
	errs         *obs.Counter

	cacheHits   *obs.Counter
	cacheMisses *obs.Counter

	enclaveLost      *obs.Counter // enclaves found lost mid-provision
	enclaveFailovers *obs.Counter // sessions completed on a replacement enclave

	active *obs.Gauge

	latency    *obs.Histogram // session duration, recorded in ms
	queueWait  *obs.Histogram // admission-to-worker wait, recorded in µs
	frameRead  *obs.Histogram // framed block sizes inbound, bytes
	frameWrite *obs.Histogram // framed block sizes outbound, bytes

	frameGap         *obs.Histogram // idle time between inbound frames, µs
	firstByteVerdict *obs.Histogram // first content byte → verdict sent, µs

	spanMu sync.Mutex
	spans  map[string]*obs.Histogram // span name → duration histogram (µs)
}

// newMetrics builds the gateway's registry. It runs after the caches and
// counter are wired but before the workers start, so the live-read series
// it registers conditionally (verdict cache, fn-cache, cycle model) match
// what the gateway actually has.
func newMetrics(g *Gateway) *metrics {
	reg := obs.NewRegistry()
	m := &metrics{reg: reg, spans: make(map[string]*obs.Histogram)}

	m.accepted = reg.Counter("engarde_gateway_sessions_accepted_total",
		"Connections admitted to the worker pool or wait queue.")
	m.shed = reg.Counter("engarde_gateway_sessions_shed_total",
		"Connections turned away with a busy verdict (pool and queue full).")
	m.rejected = reg.Counter("engarde_gateway_sessions_rejected_total",
		"Connections closed without a verdict (shutdown in progress).")
	m.timeouts = reg.Counter("engarde_gateway_sessions_timed_out_total",
		"Sessions cut off by the idle deadline or total session budget.")
	m.served = reg.Counter("engarde_gateway_sessions_served_total",
		"Admitted sessions carried to completion (verdict or error).")
	m.errs = reg.Counter("engarde_gateway_errors_total",
		"Protocol or provisioning-machinery failures.")

	m.compliant = reg.Counter("engarde_gateway_verdicts_total",
		"Provisioning verdicts by outcome.",
		obs.Label{Key: "verdict", Value: "compliant"})
	m.nonCompliant = reg.Counter("engarde_gateway_verdicts_total", "",
		obs.Label{Key: "verdict", Value: "non_compliant"})

	m.cacheHits = reg.Counter("engarde_gateway_verdict_cache_lookups_total",
		"Verdict-cache lookups by result.",
		obs.Label{Key: "result", Value: "hit"})
	m.cacheMisses = reg.Counter("engarde_gateway_verdict_cache_lookups_total", "",
		obs.Label{Key: "result", Value: "miss"})

	m.enclaveLost = reg.Counter("engarde_gateway_enclave_lost_total",
		"Enclaves found lost (EPC pages reclaimed by the host), by detection point.",
		obs.Label{Key: "at", Value: "mid_provision"})
	m.enclaveFailovers = reg.Counter("engarde_gateway_enclave_failover_total",
		"Sessions transparently re-run on a replacement enclave after a mid-provision enclave loss.")

	m.active = reg.Gauge("engarde_gateway_sessions_active",
		"Sessions currently being served.")
	reg.GaugeFunc("engarde_gateway_queue_depth",
		"Admitted connections waiting for a worker.",
		func() float64 { return float64(len(g.queue)) })

	m.latency = reg.Histogram("engarde_gateway_session_seconds",
		"End-to-end duration of admitted sessions.",
		obs.HistogramOpts{Buckets: numLatencyBuckets, Scale: 1e-3})
	m.queueWait = reg.Histogram("engarde_gateway_queue_wait_seconds",
		"Time admitted connections spent waiting for a worker.",
		obs.HistogramOpts{Buckets: 28, Scale: 1e-6})
	m.frameRead = reg.Histogram("engarde_gateway_frame_bytes",
		"Framed secure-channel block sizes on the wire, by direction.",
		obs.HistogramOpts{Buckets: 24},
		obs.Label{Key: "dir", Value: "read"})
	m.frameWrite = reg.Histogram("engarde_gateway_frame_bytes", "",
		obs.HistogramOpts{Buckets: 24},
		obs.Label{Key: "dir", Value: "write"})
	m.frameGap = reg.Histogram("engarde_gateway_frame_gap_seconds",
		"Idle time between successive inbound frames within a session.",
		obs.HistogramOpts{Buckets: 28, Scale: 1e-6})
	m.firstByteVerdict = reg.Histogram("engarde_gateway_first_byte_to_verdict_seconds",
		"Arrival of the first image byte to the verdict hitting the wire.",
		obs.HistogramOpts{Buckets: 28, Scale: 1e-6})

	if g.cache != nil {
		reg.GaugeFunc("engarde_gateway_verdict_cache_entries",
			"Verdicts currently resident in the cache.",
			func() float64 { return float64(g.cache.len()) })
		reg.CounterFunc("engarde_gateway_verdict_cache_evictions_total",
			"Verdicts dropped from the cache at capacity.",
			g.cache.evicted)
	}
	if g.fnCache != nil {
		reg.CounterFunc("engarde_gateway_fn_cache_lookups_total",
			"Function-result cache lookups by result.",
			func() uint64 { return g.fnCache.Stats().Hits },
			obs.Label{Key: "result", Value: "hit"})
		reg.CounterFunc("engarde_gateway_fn_cache_lookups_total", "",
			func() uint64 { return g.fnCache.Stats().Misses },
			obs.Label{Key: "result", Value: "miss"})
		reg.CounterFunc("engarde_gateway_fn_cache_evictions_total",
			"Function results evicted from the cache at capacity.",
			func() uint64 { return g.fnCache.Stats().Evictions })
		reg.GaugeFunc("engarde_gateway_fn_cache_entries",
			"Function results currently resident in the cache.",
			func() float64 { return float64(g.fnCache.Stats().Entries) })
		reg.GaugeFunc("engarde_gateway_fn_cache_resident_bytes",
			"Payload bytes resident in the function-result cache.",
			func() float64 { return float64(g.fnCache.Stats().Bytes) })
		if g.fnCache.RemoteEnabled() {
			reg.CounterFunc("engarde_gateway_fn_cache_remote_lookups_total",
				"Function results batch-fetched from fleet peers, by result.",
				func() uint64 { return g.fnCache.Stats().RemoteHits },
				obs.Label{Key: "result", Value: "hit"})
			reg.CounterFunc("engarde_gateway_fn_cache_remote_lookups_total", "",
				func() uint64 { return g.fnCache.Stats().RemoteMisses },
				obs.Label{Key: "result", Value: "miss"})
			reg.CounterFunc("engarde_gateway_fn_cache_remote_faults_total",
				"Failed or corrupt peer exchanges (feeds the remote circuit breaker).",
				func() uint64 { return g.fnCache.Stats().RemoteFaults })
			reg.CounterFunc("engarde_gateway_fn_cache_remote_trips_total",
				"Remote-tier circuit-breaker trips.",
				func() uint64 { return g.fnCache.Stats().RemoteTrips })
			reg.CounterFunc("engarde_gateway_fn_cache_remote_puts_total",
				"Function results pushed to fleet peers.",
				func() uint64 { return g.fnCache.Stats().RemotePuts })
		}
		reg.CounterFunc("engarde_gateway_fn_cache_peer_served_total",
			"Function results served to fleet peers over /memoz.",
			func() uint64 { return g.fnCache.Stats().PeerServed })
		reg.CounterFunc("engarde_gateway_fn_cache_peer_stored_total",
			"Function results stored on behalf of fleet peers over /memoz.",
			func() uint64 { return g.fnCache.Stats().PeerStored })
	}
	if g.pool != nil {
		p := g.pool
		p.waitHist = reg.Histogram("engarde_gateway_pool_checkout_wait_seconds",
			"Time sessions waited to check a warm enclave out of the pool.",
			obs.HistogramOpts{Buckets: 28, Scale: 1e-6})
		reg.GaugeFunc("engarde_gateway_pool_depth",
			"Warm enclaves currently checked in and ready.",
			func() float64 { return float64(len(p.slots)) })
		reg.GaugeFunc("engarde_gateway_pool_target",
			"Configured warm-pool depth the refill workers maintain.",
			func() float64 { return float64(p.target) })
		reg.CounterFunc("engarde_gateway_pool_checkouts_total",
			"Enclave checkouts by source: warm (pooled) or cold (fallback build).",
			p.warm.Load, obs.Label{Key: "source", Value: "warm"})
		reg.CounterFunc("engarde_gateway_pool_checkouts_total", "",
			p.cold.Load, obs.Label{Key: "source", Value: "cold"})
		reg.CounterFunc("engarde_gateway_pool_clones_total",
			"Background snapshot-clone attempts by result.",
			p.clones.Load, obs.Label{Key: "result", Value: "ok"})
		reg.CounterFunc("engarde_gateway_pool_clones_total", "",
			p.cloneErrs.Load, obs.Label{Key: "result", Value: "error"})
		reg.CounterFunc("engarde_gateway_pool_scrubs_total",
			"Returned enclaves scrubbed to the snapshot image and re-pooled.",
			p.scrubs.Load)
		reg.CounterFunc("engarde_gateway_pool_discards_total",
			"Returned enclaves destroyed instead of re-pooled (drain, scrub failure, raced-full pool).",
			p.discards.Load)
		reg.CounterFunc("engarde_gateway_enclave_lost_total", "",
			p.lost.Load, obs.Label{Key: "at", Value: "pool"})
		// Amortized snapshot economics: the one-time measured build of the
		// template, and the cycle-model cost of the clones minted so far —
		// creation work that pooling keeps off the session timeline but must
		// stay visible on the exposition (see EXPERIMENTS.md).
		reg.GaugeFunc("engarde_gateway_pool_snapshot_build_cycles",
			"One-time cycle cost of building and capturing the snapshot template.",
			func() float64 { return float64(p.snap.BuildCycles()) })
		reg.CounterFunc("engarde_gateway_pool_clone_cycles_total",
			"Cycle-model cost of all snapshot clones minted so far.",
			func() uint64 { return p.clones.Load() * p.snap.CloneCycleCost() })
	}
	if g.counter != nil {
		for _, p := range cycles.AllPhases() {
			p := p
			reg.CounterFunc("engarde_cycles_total",
				"Cycle-model charges across all enclaves, by pipeline phase.",
				func() uint64 { return g.counter.Cycles(p) },
				obs.Label{Key: "phase", Value: p.String()})
		}
	}
	return m
}

// observeTrace feeds a finished session trace into the per-span duration
// histograms — the aggregate view (/metricsz) of what /tracez shows per
// session.
func (m *metrics) observeTrace(d *obs.TraceData) {
	if d == nil {
		return
	}
	for i := range d.Spans {
		sp := &d.Spans[i]
		m.spanHist(sp.Name).Observe(uint64(sp.Dur / time.Microsecond))
		if sp.Name == "first-byte-to-verdict" {
			// Also fold into the dedicated histogram so dashboards get the
			// headline number without a span-label query.
			m.firstByteVerdict.Observe(uint64(sp.Dur / time.Microsecond))
		}
	}
}

// spanHist lazily registers one duration series per span name. Span names
// are low-cardinality by construction: protocol steps, pipeline phases,
// disassembly passes, and "policy:<module>" for the configured module set.
func (m *metrics) spanHist(name string) *obs.Histogram {
	m.spanMu.Lock()
	defer m.spanMu.Unlock()
	h := m.spans[name]
	if h == nil {
		h = m.reg.Histogram("engarde_gateway_span_seconds",
			"Wall-clock span durations within provisioning sessions, by span name.",
			obs.HistogramOpts{Buckets: 28, Scale: 1e-6},
			obs.Label{Key: "span", Value: name})
		m.spans[name] = h
	}
	return h
}

// ObserveReadFrame implements secchan.FrameObserver: the gateway wraps each
// admitted connection with secchan.ObserveFrames(rw, g.metrics).
func (m *metrics) ObserveReadFrame(n int) { m.frameRead.Observe(uint64(n)) }

// ObserveWriteFrame implements secchan.FrameObserver.
func (m *metrics) ObserveWriteFrame(n int) { m.frameWrite.Observe(uint64(n)) }

// sessionFrames layers per-session frame-arrival timing over the shared
// size histograms: each admitted connection gets its own instance so the
// inter-frame gap is measured within a single session's inbound stream,
// not across interleaved sessions. It implements secchan.FrameTimeObserver;
// sessions are served by one worker, so no locking is needed.
type sessionFrames struct {
	m        *metrics
	lastRead time.Time
}

func (s *sessionFrames) ObserveReadFrame(n int)  { s.m.ObserveReadFrame(n) }
func (s *sessionFrames) ObserveWriteFrame(n int) { s.m.ObserveWriteFrame(n) }

func (s *sessionFrames) ObserveReadFrameAt(n int, at time.Time) {
	s.m.ObserveReadFrame(n)
	if !s.lastRead.IsZero() {
		s.m.frameGap.Observe(uint64(at.Sub(s.lastRead) / time.Microsecond))
	}
	s.lastRead = at
}

func (s *sessionFrames) ObserveWriteFrameAt(n int, at time.Time) {
	s.m.ObserveWriteFrame(n)
}
