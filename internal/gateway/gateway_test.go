package gateway_test

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"engarde"
	"engarde/internal/cycles"
	"engarde/internal/gateway"
	"engarde/internal/toolchain"
)

// pipeListener is an in-memory net.Listener over net.Pipe, so the gateway
// is exercised end-to-end without touching real sockets.
type pipeListener struct {
	conns chan net.Conn
	done  chan struct{}
	once  sync.Once
}

func newPipeListener() *pipeListener {
	return &pipeListener{conns: make(chan net.Conn), done: make(chan struct{})}
}

func (l *pipeListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.conns:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

func (l *pipeListener) Close() error {
	l.once.Do(func() { close(l.done) })
	return nil
}

type pipeAddr struct{}

func (pipeAddr) Network() string { return "pipe" }
func (pipeAddr) String() string  { return "pipe" }

func (l *pipeListener) Addr() net.Addr { return pipeAddr{} }

// Dial hands the server side to the accept loop and returns the client side.
func (l *pipeListener) Dial() (net.Conn, error) {
	cli, srv := net.Pipe()
	select {
	case l.conns <- srv:
		return cli, nil
	case <-l.done:
		cli.Close()
		return nil, net.ErrClosed
	}
}

// slowConn delays the first read, pinning its session in flight long
// enough for shutdown tests to observe it.
type slowConn struct {
	net.Conn
	delay time.Duration
	once  sync.Once
}

func (c *slowConn) Read(b []byte) (int, error) {
	c.once.Do(func() { time.Sleep(c.delay) })
	return c.Conn.Read(b)
}

const (
	testHeapPages   = 1500
	testClientPages = 512
)

func buildImage(t testing.TB, name string, seed int64, stackProtected bool) []byte {
	t.Helper()
	bin, err := toolchain.Build(toolchain.Config{
		Name: name, Seed: seed, NumFuncs: 6, AvgFuncInsts: 40,
		StackProtector: stackProtected,
	})
	if err != nil {
		t.Fatal(err)
	}
	return bin.Image
}

// testGateway assembles a provider + gateway and a client template.
func testGateway(t testing.TB, cfg gateway.Config) (*gateway.Gateway, *pipeListener, *engarde.Client) {
	t.Helper()
	counter := cycles.NewCounter(cycles.DefaultModel())
	provider, err := engarde.NewProvider(engarde.ProviderConfig{EPCPages: 16384, Counter: counter})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Provider = provider
	cfg.HeapPages = testHeapPages
	cfg.ClientPages = testClientPages
	if cfg.IdleTimeout == 0 {
		cfg.IdleTimeout = time.Minute
	}
	if cfg.SessionBudget == 0 {
		cfg.SessionBudget = 2 * time.Minute
	}
	gw, err := gateway.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	expected, err := engarde.ExpectedMeasurement(engarde.SGXv2, engarde.EnclaveConfig{
		HeapPages: testHeapPages, ClientPages: testClientPages,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln := newPipeListener()
	serveErr := make(chan error, 1)
	go func() { serveErr <- gw.Serve(context.Background(), ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = gw.Shutdown(ctx)
		if err := <-serveErr; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return gw, ln, &engarde.Client{Expected: expected, PlatformKey: provider.AttestationPublicKey()}
}

// waitFor polls cond until it holds; the client side of a session can
// finish a beat before the serving worker updates its stats.
func waitFor(t testing.TB, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func provisionOnce(t testing.TB, ln *pipeListener, client *engarde.Client, image []byte) (engarde.Verdict, error) {
	t.Helper()
	conn, err := ln.Dial()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	return client.Provision(conn, image)
}

// TestGatewayConcurrentProvisioning drives N parallel tenants through the
// gateway: verdict correctness for compliant and violating images, exact
// cache-hit accounting, and per-phase cycle totals in the stats snapshot.
func TestGatewayConcurrentProvisioning(t *testing.T) {
	var mu sync.Mutex
	var reports []*engarde.Report
	gw, ln, client := testGateway(t, gateway.Config{
		Policies:      engarde.NewPolicySet(engarde.StackProtectorPolicy()),
		MaxConcurrent: 4,
		OnServed: func(_ net.Conn, _ *engarde.Enclave, rep *engarde.Report, err error) {
			mu.Lock()
			defer mu.Unlock()
			if err == nil {
				reports = append(reports, rep)
			}
		},
	})
	good := buildImage(t, "good", 91, true)
	bad := buildImage(t, "bad", 92, false) // no stack protector → rejected

	// Sequential warm-up: one cold provision per image populates the cache.
	if v, err := provisionOnce(t, ln, client, good); err != nil || !v.Compliant {
		t.Fatalf("warm-up good: %+v, %v", v, err)
	}
	if v, err := provisionOnce(t, ln, client, bad); err != nil || v.Compliant || v.Code != engarde.CodePolicy {
		t.Fatalf("warm-up bad: %+v, %v", v, err)
	}
	if s := gw.Stats(); s.CacheMisses != 2 || s.CacheHits != 0 {
		t.Fatalf("after warm-up: hits=%d misses=%d, want 0/2", s.CacheHits, s.CacheMisses)
	}

	// Parallel phase: every provision is now byte-identical to a cached
	// one, so all must be served from the verdict cache.
	const goodClients, badClients = 5, 3
	var wg sync.WaitGroup
	errs := make(chan error, goodClients+badClients)
	for i := 0; i < goodClients+badClients; i++ {
		image, wantCompliant := good, true
		if i >= goodClients {
			image, wantCompliant = bad, false
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := provisionOnce(t, ln, client, image)
			if err != nil {
				errs <- err
				return
			}
			if v.Compliant != wantCompliant {
				t.Errorf("verdict compliant=%v, want %v (reason %q)", v.Compliant, wantCompliant, v.Reason)
			}
			if !wantCompliant && v.Code != engarde.CodePolicy {
				t.Errorf("rejection code = %q, want %q", v.Code, engarde.CodePolicy)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("client: %v", err)
	}
	waitFor(t, "all sessions accounted", func() bool {
		s := gw.Stats()
		mu.Lock()
		got := len(reports)
		mu.Unlock()
		return s.Served == 2+goodClients+badClients && s.Active == 0 && got == 2+goodClients+badClients
	})

	s := gw.Stats()
	if s.CacheHits != goodClients+badClients || s.CacheMisses != 2 {
		t.Errorf("cache: hits=%d misses=%d, want %d/2", s.CacheHits, s.CacheMisses, goodClients+badClients)
	}
	if s.Served != 2+goodClients+badClients || s.Errors != 0 {
		t.Errorf("served=%d errors=%d, want %d/0", s.Served, s.Errors, 2+goodClients+badClients)
	}
	if s.Compliant != 1+goodClients || s.NonCompliant != 1+badClients {
		t.Errorf("compliant=%d nonCompliant=%d", s.Compliant, s.NonCompliant)
	}
	if s.Latency.Count != s.Served {
		t.Errorf("latency count = %d, want %d", s.Latency.Count, s.Served)
	}
	if s.PhaseCycles["Policy Checking"] == 0 || s.PhaseCycles["Disassembly"] == 0 {
		t.Errorf("phase cycles missing: %v", s.PhaseCycles)
	}

	// Reports on the hit path must say so, and compliant hits must still
	// be fully loaded (real entry point).
	mu.Lock()
	defer mu.Unlock()
	var hits uint64
	for _, rep := range reports {
		if rep.CacheHit {
			hits++
			if rep.Compliant && rep.Entry == 0 {
				t.Error("compliant cache hit without a loaded entry point")
			}
		}
	}
	if hits != goodClients+badClients {
		t.Errorf("reports with CacheHit: %d, want %d", hits, goodClients+badClients)
	}
}

// TestGatewayMixedWorkloadParallel drives compliant, policy-violating and
// malformed images through the gateway at the same time, with the parallel
// disassembly and policy pipeline enabled. Every image is distinct, so
// every session is a cold provision and the sharded workers of different
// sessions genuinely overlap — the configuration the race detector needs
// to see. Each class must keep its verdict.
func TestGatewayMixedWorkloadParallel(t *testing.T) {
	gw, ln, client := testGateway(t, gateway.Config{
		Policies:      engarde.NewPolicySet(engarde.StackProtectorPolicy()),
		MaxConcurrent: 4,
		DisasmWorkers: 4,
		PolicyWorkers: 4,
	})

	const perClass = 3
	type job struct {
		image    []byte
		wantCode engarde.ReasonCode
	}
	var jobs []job
	for i := 0; i < perClass; i++ {
		jobs = append(jobs,
			job{buildImage(t, "mix-good", 9500+int64(i), true), engarde.CodeOK},
			job{buildImage(t, "mix-bad", 9600+int64(i), false), engarde.CodePolicy},
		)
		// Malformed: a valid image with its ELF magic destroyed — rejected
		// at header verification, before disassembly.
		garbage := buildImage(t, "mix-ugly", 9700+int64(i), true)
		garbage[0] ^= 0xFF
		jobs = append(jobs, job{garbage, engarde.CodeRejected})
	}

	var wg sync.WaitGroup
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j job) {
			defer wg.Done()
			v, err := provisionOnce(t, ln, client, j.image)
			if err != nil {
				t.Errorf("job %d: %v", i, err)
				return
			}
			if v.Compliant != (j.wantCode == engarde.CodeOK) || v.Code != j.wantCode {
				t.Errorf("job %d: verdict (%v, %q), want code %q (reason %q)",
					i, v.Compliant, v.Code, j.wantCode, v.Reason)
			}
		}(i, j)
	}
	wg.Wait()

	waitFor(t, "all sessions accounted", func() bool {
		s := gw.Stats()
		return s.Served == uint64(len(jobs)) && s.Active == 0
	})
	s := gw.Stats()
	if s.Compliant != perClass || s.NonCompliant != 2*perClass {
		t.Errorf("compliant=%d nonCompliant=%d, want %d/%d", s.Compliant, s.NonCompliant, perClass, 2*perClass)
	}
	if s.CacheHits != 0 {
		t.Errorf("cache hits = %d, want 0 (all images distinct)", s.CacheHits)
	}
}

// TestGatewayShutdownDrainsInFlight: a session admitted before Shutdown is
// served to completion; afterwards the listener is closed and Serve
// returns cleanly.
func TestGatewayShutdownDrainsInFlight(t *testing.T) {
	gw, ln, client := testGateway(t, gateway.Config{MaxConcurrent: 2})
	image := buildImage(t, "drain", 93, false)

	verdicts := make(chan engarde.Verdict, 1)
	clientErr := make(chan error, 1)
	go func() {
		conn, err := ln.Dial()
		if err != nil {
			clientErr <- err
			return
		}
		defer conn.Close()
		// The slow first read keeps the session in flight while Shutdown
		// starts.
		v, err := client.Provision(&slowConn{Conn: conn, delay: 500 * time.Millisecond}, image)
		verdicts <- v
		clientErr <- err
	}()

	// Wait until the session is in flight.
	deadline := time.Now().Add(10 * time.Second)
	for gw.Stats().Active == 0 {
		if time.Now().After(deadline) {
			t.Fatal("session never became active")
		}
		time.Sleep(5 * time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := gw.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-clientErr; err != nil {
		t.Fatalf("in-flight client failed: %v", err)
	}
	if v := <-verdicts; !v.Compliant {
		t.Errorf("in-flight client verdict: %+v", v)
	}
	if _, err := ln.Dial(); err == nil {
		t.Error("dial after shutdown must fail")
	}
	if s := gw.Stats(); s.Active != 0 || s.Served != 1 {
		t.Errorf("after shutdown: active=%d served=%d", s.Active, s.Served)
	}
}

// TestGatewayBackpressure: with a single worker and no queue, a second
// concurrent connection is shed at admission with a typed busy verdict
// carrying a Retry-After hint — never silently closed, never queued.
func TestGatewayBackpressure(t *testing.T) {
	gw, ln, client := testGateway(t, gateway.Config{
		MaxConcurrent: 1,
		QueueDepth:    -1, // no waiting room
	})
	image := buildImage(t, "bp", 94, false)

	// Occupy the only worker: the gateway blocks writing hello because
	// this client never reads. (net.Pipe is fully synchronous.)
	stall, err := ln.Dial()
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for gw.Stats().Active == 0 {
		if time.Now().After(deadline) {
			t.Fatal("stalled session never became active")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The next tenant must be turned away with a busy verdict.
	v, err := provisionOnce(t, ln, client, image)
	if err != nil {
		t.Fatalf("shed connection must still complete the protocol: %v", err)
	}
	if v.Compliant || v.Code != engarde.CodeBusy {
		t.Fatalf("shed verdict = %+v, want code %q", v, engarde.CodeBusy)
	}
	if v.RetryAfterMillis <= 0 {
		t.Errorf("busy verdict carries no Retry-After hint: %+v", v)
	}
	waitFor(t, "shed counted", func() bool { return gw.Stats().Shed == 1 })

	// Release the worker; the stalled tenant completes normally.
	v, err = client.Provision(stall, image)
	stall.Close()
	if err != nil || !v.Compliant {
		t.Errorf("stalled client after release: %+v, %v", v, err)
	}
	waitFor(t, "stalled session accounted", func() bool { return gw.Stats().Served == 1 })
	if s := gw.Stats(); s.Shed != 1 || s.Rejected != 0 || s.Accepted != 1 {
		t.Errorf("accepted=%d shed=%d rejected=%d, want 1/1/0", s.Accepted, s.Shed, s.Rejected)
	}
}

// TestGatewayRetryAfterShed: ProvisionRetry turns a shed connection into a
// served one once capacity frees up, honoring the Retry-After hint.
func TestGatewayRetryAfterShed(t *testing.T) {
	gw, ln, client := testGateway(t, gateway.Config{
		MaxConcurrent:  1,
		QueueDepth:     -1,
		RetryAfterHint: 10 * time.Millisecond,
	})
	image := buildImage(t, "retry", 95, false)

	stall, err := ln.Dial()
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "stalled session active", func() bool { return gw.Stats().Active == 1 })

	done := make(chan struct{})
	go func() {
		defer close(done)
		// Generous attempt budget: under -race the stalled session's
		// provision (which frees the worker) can take a couple of seconds,
		// and the retrier must still be alive when it does.
		v, err := client.ProvisionRetry(ln.Dial, image, engarde.RetryPolicy{
			Attempts:  100,
			BaseDelay: 5 * time.Millisecond,
			MaxDelay:  50 * time.Millisecond,
			Seed:      1,
		})
		if err != nil || !v.Compliant {
			t.Errorf("retrying client: %+v, %v", v, err)
		}
	}()

	// Let it get shed at least once, then free the worker.
	waitFor(t, "first shed", func() bool { return gw.Stats().Shed >= 1 })
	v, err := client.Provision(stall, image)
	stall.Close()
	if err != nil || !v.Compliant {
		t.Fatalf("stalled client: %+v, %v", v, err)
	}
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("retrying client never completed")
	}
}
