package gateway

import (
	"encoding/json"
	"math/bits"
	"net/http"
	"sync/atomic"
	"time"

	"engarde"
)

// counters holds the gateway's hot-path metrics. All fields are atomic so
// workers never contend on a stats lock.
type counters struct {
	accepted     atomic.Uint64
	rejected     atomic.Uint64
	shed         atomic.Uint64
	timeouts     atomic.Uint64
	served       atomic.Uint64
	compliant    atomic.Uint64
	nonCompliant atomic.Uint64
	errs         atomic.Uint64
	cacheHits    atomic.Uint64
	cacheMisses  atomic.Uint64
	active       atomic.Int64
	hist         latencyHist
}

// numLatencyBuckets covers sessions up to ~2^20 ms (≈17 min) with
// power-of-two bounds; the last bucket is unbounded.
const numLatencyBuckets = 22

// latencyHist is a lock-free histogram of session latencies. Bucket i
// counts latencies in [2^(i-1), 2^i) milliseconds (bucket 0: < 1 ms).
type latencyHist struct {
	buckets [numLatencyBuckets]atomic.Uint64
}

func (h *latencyHist) observe(d time.Duration) {
	ms := uint64(d / time.Millisecond)
	i := bits.Len64(ms)
	if i >= numLatencyBuckets {
		i = numLatencyBuckets - 1
	}
	h.buckets[i].Add(1)
}

// LatencyBucket is one histogram bucket: Count sessions took less than
// LEMillis milliseconds (cumulative, Prometheus-style).
type LatencyBucket struct {
	LEMillis float64 `json:"le_ms"`
	Count    uint64  `json:"count"`
}

// LatencySnapshot summarizes the latency histogram.
type LatencySnapshot struct {
	Count    uint64          `json:"count"`
	P50Milli float64         `json:"p50_ms"` // upper bound of the median bucket
	P95Milli float64         `json:"p95_ms"` // upper bound of the p95 bucket
	Buckets  []LatencyBucket `json:"buckets,omitempty"`
}

func (h *latencyHist) snapshot() LatencySnapshot {
	var raw [numLatencyBuckets]uint64
	var total uint64
	last := -1
	for i := range raw {
		raw[i] = h.buckets[i].Load()
		total += raw[i]
		if raw[i] > 0 {
			last = i
		}
	}
	out := LatencySnapshot{Count: total}
	if total == 0 {
		return out
	}
	bound := func(i int) float64 {
		if i == 0 {
			return 1
		}
		return float64(uint64(1) << uint(i))
	}
	quantile := func(q float64) float64 {
		target := uint64(q * float64(total))
		var cum uint64
		for i := 0; i <= last; i++ {
			cum += raw[i]
			if cum > target {
				return bound(i)
			}
		}
		return bound(last)
	}
	out.P50Milli = quantile(0.50)
	out.P95Milli = quantile(0.95)
	var cum uint64
	for i := 0; i <= last; i++ {
		cum += raw[i]
		out.Buckets = append(out.Buckets, LatencyBucket{LEMillis: bound(i), Count: cum})
	}
	return out
}

// Stats is a point-in-time snapshot of the gateway's metrics.
type Stats struct {
	// Admission control.
	Accepted uint64 `json:"accepted"`  // connections admitted to the pool/queue
	Shed     uint64 `json:"shed"`      // turned away with a busy verdict: pool and queue full
	Rejected uint64 `json:"rejected"`  // closed without a verdict (shutdown in progress)
	TimedOut uint64 `json:"timed_out"` // sessions cut off by idle deadline or session budget
	Active   int64  `json:"active"`    // sessions currently being served
	Queued   int    `json:"queued"`    // admitted, waiting for a worker

	// Outcomes.
	Served       uint64 `json:"served"`
	Compliant    uint64 `json:"compliant"`
	NonCompliant uint64 `json:"non_compliant"`
	Errors       uint64 `json:"errors"` // protocol/machinery failures

	// Verdict cache.
	CacheHits      uint64  `json:"cache_hits"`
	CacheMisses    uint64  `json:"cache_misses"`
	CacheHitRate   float64 `json:"cache_hit_rate"` // hits / (hits+misses)
	CacheEntries   int     `json:"cache_entries"`
	CacheEvictions uint64  `json:"cache_evictions"` // verdicts dropped at capacity

	// Function-result cache (warm-path provisioning). Nil when disabled.
	FnCache        *engarde.FnCacheStats `json:"fn_cache,omitempty"`
	FnCacheHitRate float64               `json:"fn_cache_hit_rate,omitempty"` // hits / (hits+misses)

	// Cycle-model totals across all enclaves (empty without a Counter).
	PhaseCycles map[string]uint64 `json:"phase_cycles,omitempty"`
	TotalCycles uint64            `json:"total_cycles,omitempty"`

	Latency LatencySnapshot `json:"latency"`
}

// Stats returns a consistent-enough snapshot for monitoring: each field is
// read atomically, though the set is not a single atomic cut.
func (g *Gateway) Stats() Stats {
	s := Stats{
		Accepted:     g.stats.accepted.Load(),
		Shed:         g.stats.shed.Load(),
		Rejected:     g.stats.rejected.Load(),
		TimedOut:     g.stats.timeouts.Load(),
		Active:       g.stats.active.Load(),
		Queued:       len(g.queue),
		Served:       g.stats.served.Load(),
		Compliant:    g.stats.compliant.Load(),
		NonCompliant: g.stats.nonCompliant.Load(),
		Errors:       g.stats.errs.Load(),
		CacheHits:    g.stats.cacheHits.Load(),
		CacheMisses:  g.stats.cacheMisses.Load(),
		Latency:      g.stats.hist.snapshot(),
	}
	if lookups := s.CacheHits + s.CacheMisses; lookups > 0 {
		s.CacheHitRate = float64(s.CacheHits) / float64(lookups)
	}
	if g.cache != nil {
		s.CacheEntries = g.cache.len()
		s.CacheEvictions = g.cache.evicted()
	}
	if g.fnCache != nil {
		fc := g.fnCache.Stats()
		s.FnCache = &fc
		if lookups := fc.Hits + fc.Misses; lookups > 0 {
			s.FnCacheHitRate = float64(fc.Hits) / float64(lookups)
		}
	}
	if g.counter != nil {
		s.PhaseCycles = g.counter.SnapshotNamed()
		s.TotalCycles = g.counter.Total()
	}
	return s
}

// StatsHandler serves the snapshot as JSON — mount it at /statsz.
func (g *Gateway) StatsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(g.Stats())
	})
}
