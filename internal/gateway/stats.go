package gateway

import (
	"encoding/json"
	"net/http"

	"engarde"
	"engarde/internal/obs"
	"engarde/internal/policy/memo"
)

// numLatencyBuckets covers sessions up to ~2^20 ms (≈17 min) with
// power-of-two bounds; the last bucket is unbounded.
const numLatencyBuckets = 22

// LatencyBucket is one histogram bucket: Count sessions took less than
// LEMillis milliseconds (cumulative, Prometheus-style).
type LatencyBucket struct {
	LEMillis float64 `json:"le_ms"`
	Count    uint64  `json:"count"`
}

// LatencySnapshot summarizes the latency histogram.
type LatencySnapshot struct {
	Count    uint64          `json:"count"`
	P50Milli float64         `json:"p50_ms"`           // upper bound of the median bucket
	P95Milli float64         `json:"p95_ms"`           // upper bound of the p95 bucket
	P99Milli float64         `json:"p99_ms,omitempty"` // upper bound of the p99 bucket
	Buckets  []LatencyBucket `json:"buckets,omitempty"`
}

// latencySnapshot derives the /statsz latency view from the registry's
// session-duration histogram — the same instrument /metricsz exposes as
// engarde_gateway_session_seconds, read in its native milliseconds.
func latencySnapshot(h *obs.Histogram) LatencySnapshot {
	out := LatencySnapshot{Count: h.Count()}
	if out.Count == 0 {
		return out
	}
	out.P50Milli = float64(h.Quantile(0.50))
	out.P95Milli = float64(h.Quantile(0.95))
	out.P99Milli = float64(h.Quantile(0.99))
	for _, b := range h.Snapshot() {
		out.Buckets = append(out.Buckets, LatencyBucket{LEMillis: float64(b.Le), Count: b.Count})
	}
	return out
}

// Stats is a point-in-time snapshot of the gateway's metrics.
type Stats struct {
	// Admission control.
	Accepted uint64 `json:"accepted"`  // connections admitted to the pool/queue
	Shed     uint64 `json:"shed"`      // turned away with a busy verdict: pool and queue full
	Rejected uint64 `json:"rejected"`  // closed without a verdict (shutdown in progress)
	TimedOut uint64 `json:"timed_out"` // sessions cut off by idle deadline or session budget
	Active   int64  `json:"active"`    // sessions currently being served
	Queued   int    `json:"queued"`    // admitted, waiting for a worker

	// Outcomes.
	Served       uint64 `json:"served"`
	Compliant    uint64 `json:"compliant"`
	NonCompliant uint64 `json:"non_compliant"`
	Errors       uint64 `json:"errors"` // protocol/machinery failures

	// Enclave-loss recovery.
	EnclavesLost     uint64 `json:"enclaves_lost"`     // lost mid-provision (pool-detected losses are under Pool.Lost)
	EnclaveFailovers uint64 `json:"enclave_failovers"` // sessions completed on a replacement enclave

	// Verdict cache.
	CacheHits      uint64  `json:"cache_hits"`
	CacheMisses    uint64  `json:"cache_misses"`
	CacheHitRate   float64 `json:"cache_hit_rate"` // hits / (hits+misses)
	CacheEntries   int     `json:"cache_entries"`
	CacheEvictions uint64  `json:"cache_evictions"` // verdicts dropped at capacity

	// Function-result cache (warm-path provisioning). Nil when disabled.
	FnCache        *engarde.FnCacheStats `json:"fn_cache,omitempty"`
	FnCacheHitRate float64               `json:"fn_cache_hit_rate,omitempty"` // hits / (hits+misses)

	// Enclave warm pool. Nil when pooling is disabled.
	Pool *PoolStats `json:"pool,omitempty"`

	// Cycle-model totals across all enclaves (empty without a Counter).
	PhaseCycles map[string]uint64 `json:"phase_cycles,omitempty"`
	TotalCycles uint64            `json:"total_cycles,omitempty"`

	Latency LatencySnapshot `json:"latency"`
}

// PoolStats snapshots the enclave warm pool: depth and lifecycle counters,
// plus the amortized snapshot economics (the one-time template build and
// the cycle-model cost of all clones minted so far) that pooling keeps off
// individual session timelines.
type PoolStats struct {
	Target        int    `json:"target"`
	Depth         int    `json:"depth"`
	WarmCheckouts uint64 `json:"warm_checkouts"`
	ColdCheckouts uint64 `json:"cold_checkouts"`
	Clones        uint64 `json:"clones"`
	CloneErrors   uint64 `json:"clone_errors"`
	Scrubs        uint64 `json:"scrubs"`
	Discards      uint64 `json:"discards"`
	Lost          uint64 `json:"lost"` // found lost while pooled (checkout drain or return)

	SnapshotPages       int    `json:"snapshot_pages"`
	SnapshotBuildCycles uint64 `json:"snapshot_build_cycles"`
	CloneCycleCost      uint64 `json:"clone_cycle_cost"`
	CloneCycles         uint64 `json:"clone_cycles"`
}

// Stats returns a consistent-enough snapshot for monitoring: each field is
// read atomically, though the set is not a single atomic cut. The snapshot
// is a read-through view over the same registry instruments /metricsz
// serves, so the two endpoints can never drift apart.
func (g *Gateway) Stats() Stats {
	m := g.metrics
	s := Stats{
		Accepted:         m.accepted.Value(),
		Shed:             m.shed.Value(),
		Rejected:         m.rejected.Value(),
		TimedOut:         m.timeouts.Value(),
		Active:           m.active.Value(),
		Queued:           len(g.queue),
		Served:           m.served.Value(),
		Compliant:        m.compliant.Value(),
		NonCompliant:     m.nonCompliant.Value(),
		Errors:           m.errs.Value(),
		EnclavesLost:     m.enclaveLost.Value(),
		EnclaveFailovers: m.enclaveFailovers.Value(),
		CacheHits:        m.cacheHits.Value(),
		CacheMisses:      m.cacheMisses.Value(),
		Latency:          latencySnapshot(m.latency),
	}
	if lookups := s.CacheHits + s.CacheMisses; lookups > 0 {
		s.CacheHitRate = float64(s.CacheHits) / float64(lookups)
	}
	if g.cache != nil {
		s.CacheEntries = g.cache.len()
		s.CacheEvictions = g.cache.evicted()
	}
	if g.fnCache != nil {
		fc := g.fnCache.Stats()
		s.FnCache = &fc
		if lookups := fc.Hits + fc.Misses; lookups > 0 {
			s.FnCacheHitRate = float64(fc.Hits) / float64(lookups)
		}
	}
	if p := g.pool; p != nil {
		clones := p.clones.Load()
		s.Pool = &PoolStats{
			Target:              p.target,
			Depth:               len(p.slots),
			WarmCheckouts:       p.warm.Load(),
			ColdCheckouts:       p.cold.Load(),
			Clones:              clones,
			CloneErrors:         p.cloneErrs.Load(),
			Scrubs:              p.scrubs.Load(),
			Discards:            p.discards.Load(),
			Lost:                p.lost.Load(),
			SnapshotPages:       p.snap.SnapshotPages(),
			SnapshotBuildCycles: p.snap.BuildCycles(),
			CloneCycleCost:      p.snap.CloneCycleCost(),
			CloneCycles:         clones * p.snap.CloneCycleCost(),
		}
	}
	if g.counter != nil {
		s.PhaseCycles = g.counter.SnapshotNamed()
		s.TotalCycles = g.counter.Total()
	}
	return s
}

// StatsHandler serves the snapshot as JSON — mount it at /statsz.
func (g *Gateway) StatsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(g.Stats())
	})
}

// MetricsHandler serves the Prometheus text exposition (version 0.0.4) of
// the gateway's registry — mount it at /metricsz.
func (g *Gateway) MetricsHandler() http.Handler {
	return g.metrics.reg.Handler()
}

// Registry exposes the gateway's metrics registry so a serving binary can
// register additional process-level series on the same exposition.
func (g *Gateway) Registry() *obs.Registry {
	return g.metrics.reg
}

// HealthzHandler reports liveness — the process is up and the mux is
// serving — and nothing more. Mount it at /healthz.
func (g *Gateway) HealthzHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ok\n"))
	})
}

// ReadyzHandler reports readiness: 200 only while the gateway is serving,
// 503 before the first Serve and from the moment Shutdown begins draining
// — the signal the fleet router's health prober and rolling restarts key
// off. Mount it at /readyz.
func (g *Gateway) ReadyzHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		if !g.ready.Load() {
			http.Error(w, "not ready", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ready\n"))
	})
}

// FnMemoHandler serves the function-result cache's peer protocol (batch
// get/put of memoized outcomes) so fleet peers can share warm-path state.
// Mount it at /memoz/. Returns 404s when the cache is disabled.
func (g *Gateway) FnMemoHandler() http.Handler {
	if g.fnCache == nil {
		return http.NotFoundHandler()
	}
	return memo.Handler(g.fnCache)
}
