package gateway_test

// The enclave warm-pool battery: warm sessions swap the create-enclave
// span for a pool-checkout, scrubbed enclaves carry no residue across
// tenants, admission control still sheds when the pool is drained, the
// pool's counters survive concurrent scraping under -race, and a chaos
// soak (scripted clone/scrub failures + faulted connections) never costs
// verdict integrity, leaks an EPC slot, or leaves the pool below target.

import (
	"bytes"
	"context"
	"errors"
	"net"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"engarde"
	"engarde/internal/cycles"
	"engarde/internal/faults"
	"engarde/internal/gateway"
	"engarde/internal/obs"
	"engarde/internal/sgx"
)

// poolGateway is testGateway with the provider exposed, so pool tests can
// audit the device's EPC slot balance across the gateway's whole life.
func poolGateway(t testing.TB, cfg gateway.Config) (*engarde.Provider, *gateway.Gateway, *pipeListener, *engarde.Client) {
	t.Helper()
	counter := cycles.NewCounter(cycles.DefaultModel())
	provider, err := engarde.NewProvider(engarde.ProviderConfig{EPCPages: 16384, Counter: counter})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Provider = provider
	cfg.HeapPages = testHeapPages
	cfg.ClientPages = testClientPages
	if cfg.IdleTimeout == 0 {
		cfg.IdleTimeout = time.Minute
	}
	if cfg.SessionBudget == 0 {
		cfg.SessionBudget = 2 * time.Minute
	}
	gw, err := gateway.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	expected, err := engarde.ExpectedMeasurement(engarde.SGXv2, engarde.EnclaveConfig{
		HeapPages: testHeapPages, ClientPages: testClientPages,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln := newPipeListener()
	serveErr := make(chan error, 1)
	go func() { serveErr <- gw.Serve(context.Background(), ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = gw.Shutdown(ctx)
		if err := <-serveErr; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return provider, gw, ln, &engarde.Client{Expected: expected, PlatformKey: provider.AttestationPublicKey()}
}

// waitPoolDepth waits for the pool to reach the given checked-in depth.
func waitPoolDepth(t testing.TB, gw *gateway.Gateway, depth int) {
	t.Helper()
	waitFor(t, "pool depth", func() bool {
		s := gw.Stats()
		return s.Pool != nil && s.Pool.Depth == depth
	})
}

// TestGatewayPooledWarmSessions: with the pool filled, every session is a
// warm checkout — its trace carries a pool-checkout span and no
// create-enclave span, verdicts are unchanged, the pool recycles (scrub,
// not re-clone) back to target depth, and the amortized snapshot/clone
// economics are visible on /statsz and /metricsz.
func TestGatewayPooledWarmSessions(t *testing.T) {
	sink, err := obs.NewSink(32, "")
	if err != nil {
		t.Fatal(err)
	}
	gw, ln, client := testGateway(t, gateway.Config{
		Policies:      engarde.NewPolicySet(engarde.StackProtectorPolicy()),
		MaxConcurrent: 2,
		EnclavePool:   2,
		TraceSink:     sink,
	})
	waitPoolDepth(t, gw, 2)
	good := buildImage(t, "pool-good", 981, true)
	bad := buildImage(t, "pool-bad", 982, false)

	if v, err := provisionOnce(t, ln, client, good); err != nil || !v.Compliant {
		t.Fatalf("good session: %+v, %v", v, err)
	}
	if v, err := provisionOnce(t, ln, client, bad); err != nil || v.Compliant || v.Code != engarde.CodePolicy {
		t.Fatalf("bad session: %+v, %v", v, err)
	}
	waitFor(t, "sessions accounted", func() bool {
		s := gw.Stats()
		return s.Served == 2 && s.Active == 0
	})

	s := gw.Stats()
	if s.Pool == nil {
		t.Fatal("stats carry no pool section with the pool enabled")
	}
	if s.Pool.WarmCheckouts != 2 || s.Pool.ColdCheckouts != 0 {
		t.Errorf("checkouts warm=%d cold=%d, want 2/0", s.Pool.WarmCheckouts, s.Pool.ColdCheckouts)
	}
	if s.Pool.SnapshotPages == 0 || s.Pool.SnapshotBuildCycles == 0 || s.Pool.CloneCycleCost == 0 {
		t.Errorf("amortized cost fields missing: %+v", s.Pool)
	}
	if s.Pool.CloneCycleCost >= s.Pool.SnapshotBuildCycles {
		t.Errorf("clone (%d cycles) is not cheaper than the measured build (%d cycles)",
			s.Pool.CloneCycleCost, s.Pool.SnapshotBuildCycles)
	}

	// Returned enclaves are scrubbed back in — population accounting means
	// no replacement clone is minted for an enclave that is coming back.
	waitFor(t, "pool re-heals by scrubbing", func() bool {
		s := gw.Stats()
		return s.Pool.Depth == 2 && s.Pool.Scrubs == 2
	})
	if s := gw.Stats(); s.Pool.Clones != 2 {
		t.Errorf("clones = %d, want 2 (initial fill only; returns are scrubbed)", s.Pool.Clones)
	}

	// Warm traces: pool-checkout stands where create-enclave would.
	var warmTraces int
	for _, tr := range sink.Recent() {
		var hasCheckout, hasCreate bool
		for _, sp := range tr.Spans {
			switch sp.Name {
			case "pool-checkout":
				hasCheckout = true
			case "create-enclave":
				hasCreate = true
			}
		}
		if hasCheckout && !hasCreate {
			warmTraces++
		} else if hasCreate {
			t.Errorf("trace %s paid create-enclave with a filled pool (spans: %v)", tr.ID, spanNames(tr.Spans))
		}
	}
	if warmTraces != 2 {
		t.Errorf("warm traces = %d, want 2", warmTraces)
	}

	// The amortized economics are on /metricsz too.
	rec := httptest.NewRecorder()
	gw.MetricsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metricsz", nil))
	body := rec.Body.String()
	for _, series := range []string{
		"engarde_gateway_pool_depth",
		"engarde_gateway_pool_checkouts_total",
		"engarde_gateway_pool_snapshot_build_cycles",
		"engarde_gateway_pool_clone_cycles_total",
		"engarde_gateway_pool_checkout_wait_seconds",
	} {
		if !strings.Contains(body, series) {
			t.Errorf("/metricsz missing %s", series)
		}
	}
}

func spanNames(spans []obs.SpanData) []string {
	names := make([]string, len(spans))
	for i, sp := range spans {
		names[i] = sp.Name
	}
	return names
}

// TestGatewayPoolNoCrossSessionResidue: a canary written into session A's
// heap pages must be unreadable in session B, even though B is served by
// the very enclave A used (pool of one; the stats pin that B's enclave was
// scrubbed, not freshly cloned).
func TestGatewayPoolNoCrossSessionResidue(t *testing.T) {
	canary := bytes.Repeat([]byte("POOL-CANARY."), 512)[:sgx.PageSize]
	var session atomic.Int64
	gw, ln, client := testGateway(t, gateway.Config{
		MaxConcurrent: 1,
		EnclavePool:   1,
		OnServed: func(_ net.Conn, encl *engarde.Enclave, _ *engarde.Report, err error) {
			if err != nil || encl == nil {
				return
			}
			// High heap page: untouched by the session's own buffers, so
			// whatever is there is either the pristine snapshot image or a
			// predecessor's leak.
			addr := encl.Core().Layout().HeapBase + 1200*sgx.PageSize
			switch session.Add(1) {
			case 1:
				if err := encl.Core().Enclave().Write(addr, canary); err != nil {
					t.Errorf("writing canary: %v", err)
				}
			case 2:
				got := make([]byte, sgx.PageSize)
				if err := encl.Core().Enclave().Read(addr, got); err != nil {
					t.Errorf("reading canary page: %v", err)
				} else if bytes.Contains(got, []byte("POOL-CANARY")) {
					t.Error("session A's canary is readable in session B")
				}
			}
		},
	})
	waitPoolDepth(t, gw, 1)
	image := buildImage(t, "residue", 983, true)

	if v, err := provisionOnce(t, ln, client, image); err != nil || !v.Compliant {
		t.Fatalf("session A: %+v, %v", v, err)
	}
	// Wait for A's enclave to be scrubbed back in, so B must reuse it.
	waitFor(t, "scrubbed return", func() bool {
		s := gw.Stats()
		return s.Pool.Scrubs == 1 && s.Pool.Depth == 1
	})
	if v, err := provisionOnce(t, ln, client, image); err != nil || !v.Compliant {
		t.Fatalf("session B: %+v, %v", v, err)
	}
	waitFor(t, "both sessions observed", func() bool { return session.Load() == 2 })

	s := gw.Stats()
	if s.Pool.WarmCheckouts != 2 || s.Pool.Clones != 1 {
		t.Errorf("warm=%d clones=%d, want 2/1 — session B did not reuse the scrubbed enclave",
			s.Pool.WarmCheckouts, s.Pool.Clones)
	}
}

// TestGatewayPoolDrainedStillSheds: pooling must not weaken admission
// control — with the pool drained and refill slower than demand, a
// connection beyond capacity still gets the typed busy verdict with the
// configured Retry-After hint, exactly as without a pool.
func TestGatewayPoolDrainedStillSheds(t *testing.T) {
	hint := 15 * time.Millisecond
	gw, ln, client := testGateway(t, gateway.Config{
		MaxConcurrent:  1,
		QueueDepth:     -1, // no waiting room
		RetryAfterHint: hint,
		EnclavePool:    1,
		PoolHooks: &gateway.PoolHooks{
			// Refill slower than demand.
			BeforeClone: func() error { time.Sleep(20 * time.Millisecond); return nil },
		},
	})
	image := buildImage(t, "pool-shed", 984, false)

	// Occupy the only worker (and drain the pool of one): this client never
	// reads the server hello, so the session pins the worker.
	stall, err := ln.Dial()
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "stalled session active", func() bool { return gw.Stats().Active == 1 })

	v, err := provisionOnce(t, ln, client, image)
	if err != nil {
		t.Fatalf("shed connection must still complete the protocol: %v", err)
	}
	if v.Compliant || v.Code != engarde.CodeBusy {
		t.Fatalf("shed verdict = %+v, want code %q", v, engarde.CodeBusy)
	}
	if v.RetryAfterMillis != hint.Milliseconds() {
		t.Errorf("Retry-After hint = %dms, want %dms", v.RetryAfterMillis, hint.Milliseconds())
	}

	v, err = client.Provision(stall, image)
	stall.Close()
	if err != nil || !v.Compliant {
		t.Errorf("stalled client after release: %+v, %v", v, err)
	}
	waitFor(t, "session accounted", func() bool { return gw.Stats().Served == 1 })
	if s := gw.Stats(); s.Shed != 1 {
		t.Errorf("shed = %d, want 1", s.Shed)
	}
}

// TestGatewayPoolStatsRace hammers /statsz and /metricsz reads against
// live checkout/return/refill traffic. The assertions are light — the
// point is the race detector seeing concurrent pool mutation and scraping.
func TestGatewayPoolStatsRace(t *testing.T) {
	gw, ln, client := testGateway(t, gateway.Config{
		Policies:      engarde.NewPolicySet(engarde.StackProtectorPolicy()),
		MaxConcurrent: 4,
		DisasmWorkers: 2,
		PolicyWorkers: 2,
		EnclavePool:   2,
	})
	const sessions = 8
	images := make([][]byte, sessions)
	for i := range images {
		images[i] = buildImage(t, "race", 985+int64(i), true)
	}

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := gw.Stats()
				if s.Pool == nil {
					t.Error("pool stats vanished mid-run")
					return
				}
				rec := httptest.NewRecorder()
				gw.MetricsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metricsz", nil))
				rec = httptest.NewRecorder()
				gw.StatsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/statsz", nil))
			}
		}()
	}

	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(image []byte) {
			defer wg.Done()
			if v, err := provisionOnce(t, ln, client, image); err != nil || !v.Compliant {
				t.Errorf("session: %+v, %v", v, err)
			}
		}(images[i])
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	waitFor(t, "sessions accounted", func() bool {
		s := gw.Stats()
		return s.Served == sessions && s.Active == 0
	})
	if s := gw.Stats(); s.Pool.WarmCheckouts+s.Pool.ColdCheckouts != sessions {
		t.Errorf("checkouts warm=%d cold=%d, want %d total",
			s.Pool.WarmCheckouts, s.Pool.ColdCheckouts, sessions)
	}
}

// TestPoolChaosSoak drives the pool through its whole failure surface at
// once: scripted clone failures, enclaves dying mid-refill, scrub
// failures, and tenants whose connections stall, flip bits, and truncate —
// all while healthy tenants provision. Faults may cost availability
// (errors, busy verdicts, cold checkouts) but never verdict integrity;
// afterwards the pool must self-heal to target depth, the device's EPC
// slot balance must return to its pre-gateway value, and no goroutine may
// be left behind. CI's pool-soak job extends it via ENGARDE_SOAK_SECONDS.
func TestPoolChaosSoak(t *testing.T) {
	baseline := runtime.NumGoroutine()
	var chaos atomic.Bool
	chaos.Store(true)
	var cloneN, afterN, scrubN atomic.Uint64
	hooks := &gateway.PoolHooks{
		BeforeClone: func() error {
			if chaos.Load() && cloneN.Add(1)%3 == 0 {
				return errors.New("chaos: injected clone failure")
			}
			return nil
		},
		AfterClone: func(*engarde.Enclave) error {
			if chaos.Load() && afterN.Add(1)%7 == 0 {
				return errors.New("chaos: enclave died mid-refill")
			}
			return nil
		},
		BeforeScrub: func() error {
			if chaos.Load() && scrubN.Add(1)%5 == 0 {
				return errors.New("chaos: injected scrub failure")
			}
			return nil
		},
	}
	const poolTarget = 2
	provider, gw, ln, client := poolGateway(t, gateway.Config{
		Policies:          engarde.NewPolicySet(engarde.StackProtectorPolicy()),
		MaxConcurrent:     4,
		QueueDepth:        4,
		IdleTimeout:       150 * time.Millisecond,
		SessionBudget:     time.Second,
		RetryAfterHint:    2 * time.Millisecond,
		EnclavePool:       poolTarget,
		PoolRefillWorkers: 2,
		PoolHooks:         hooks,
		// The scrub/discard cadence below is tuned for the buffered receive;
		// pool behaviour under the streaming path is TestStreamingChaosSoak's.
		DisableStreaming: true,
	})
	good := buildImage(t, "pool-soak-good", 971, true)
	bad := buildImage(t, "pool-soak-bad", 972, false)

	const numClients = 8
	var (
		sessions  atomic.Int64
		healthyOK atomic.Uint64
		dropped   atomic.Uint64
		faultedOK atomic.Uint64
		faultedE  atomic.Uint64
	)
	deadline := time.Now().Add(soakDuration())
	var wg sync.WaitGroup
	for c := 0; c < numClients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				id := sessions.Add(1)
				image, wantCompliant := good, true
				if id%2 == 0 {
					image, wantCompliant = bad, false
				}
				if id%4 == 0 {
					// Healthy session: if it completes, the verdict is exact.
					v, err := client.ProvisionRetry(ln.Dial, image, engarde.RetryPolicy{
						Attempts:  8,
						BaseDelay: 2 * time.Millisecond,
						MaxDelay:  20 * time.Millisecond,
						Seed:      id,
					})
					switch {
					case errors.Is(err, engarde.ErrAttestation):
						t.Errorf("healthy session %d: %v", id, err)
					case err != nil:
						dropped.Add(1)
					case v.Compliant != wantCompliant:
						t.Errorf("healthy session %d: verdict %+v, want compliant=%v", id, v, wantCompliant)
					default:
						healthyOK.Add(1)
					}
					continue
				}
				conn, err := ln.Dial()
				if err != nil {
					t.Errorf("session %d: dial: %v", id, err)
					return
				}
				cc := faults.WrapConn(conn, faults.Schedule{
					Seed:         id,
					LatencyProb:  0.05,
					PartialProb:  0.10,
					BitFlipProb:  0.05,
					StallProb:    0.02,
					Stall:        200 * time.Millisecond, // > IdleTimeout
					TruncateProb: 0.05,
					ErrorProb:    0.05,
				})
				v, err := client.Provision(cc, image)
				cc.Close()
				switch {
				case err != nil:
					faultedE.Add(1)
				case v.Code == engarde.CodeBusy:
					dropped.Add(1)
				case v.Compliant != wantCompliant:
					t.Errorf("faulted session %d (seed %d): WRONG verdict %+v, want compliant=%v",
						id, id, v, wantCompliant)
				default:
					faultedOK.Add(1)
				}
			}
		}()
	}
	wg.Wait()

	// Faults off: the pool must self-heal to target depth with no traffic —
	// topUp's delayed re-kick is the only thing driving it now.
	chaos.Store(false)
	waitFor(t, "pool self-heal to target depth", func() bool {
		s := gw.Stats()
		return s.Pool.Depth == poolTarget
	})

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := gw.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown under chaos: %v", err)
	}

	s := gw.Stats()
	t.Logf("pool soak: %d sessions (healthy ok=%d dropped=%d; faulted ok=%d err=%d); pool %+v",
		sessions.Load(), healthyOK.Load(), dropped.Load(), faultedOK.Load(), faultedE.Load(), *s.Pool)
	if healthyOK.Load() == 0 {
		t.Error("soak observed no successful healthy session")
	}
	if s.Pool.CloneErrors == 0 {
		t.Error("no clone failures were injected; chaos hooks never bit")
	}
	if s.Pool.Discards == 0 {
		t.Error("no returned enclave was discarded; scrub-failure path never exercised")
	}
	if s.Active != 0 {
		t.Errorf("active = %d after shutdown", s.Active)
	}
	if s.Served != s.Compliant+s.NonCompliant+s.Errors {
		t.Errorf("served=%d != compliant=%d + nonCompliant=%d + errors=%d",
			s.Served, s.Compliant, s.NonCompliant, s.Errors)
	}
	if s.Accepted != s.Served {
		t.Errorf("accepted=%d != served=%d: admitted connection lost without service", s.Accepted, s.Served)
	}
	// EPC slot balance: with the pool closed and every session torn down,
	// only the provider's own quoting enclave still holds pages.
	held := 16384 - provider.Device().EPCFree() // poolGateway's EPCPages
	if perEnclave := 16 + testHeapPages + testClientPages; held >= perEnclave {
		t.Errorf("EPC leak: %d pages still held after shutdown (≥ one %d-page enclave)", held, perEnclave)
	}
	waitGoroutines(t, baseline)
}
