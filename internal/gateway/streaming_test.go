package gateway_test

// Streaming-path gateway tests: the default receive overlaps transfer with
// the provisioning pipeline, so these assert (1) verdict and cache behaviour
// are indistinguishable from the buffered escape hatch, and (2) the overlap
// telemetry — recv-overlap and first-byte-to-verdict spans, the dedicated
// histograms — actually fires.

import (
	"strings"
	"testing"

	"engarde"
	"engarde/internal/gateway"
	"engarde/internal/obs"
	"engarde/internal/toolchain"
)

// buildLargeImage makes an image whose text segment spans many frames at
// small block sizes, so the streaming decoder demonstrably overlaps.
func buildLargeImage(t testing.TB, name string, seed int64) []byte {
	t.Helper()
	bin, err := toolchain.Build(toolchain.Config{
		Name: name, Seed: seed, NumFuncs: 48, AvgFuncInsts: 120,
		StackProtector: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return bin.Image
}

// TestStreamingServesAndObserves drives sessions through the streaming
// gateway with small client frames and checks the full telemetry contract:
// the verdict is exact, the verdict cache keys off the incremental digest
// (a repeat is a hit with no second pipeline run), recv-overlap and
// first-byte-to-verdict spans appear in the trace, and the new histograms
// register and count on /metricsz without breaking exposition lint.
func TestStreamingServesAndObserves(t *testing.T) {
	sink, err := obs.NewSink(16, "")
	if err != nil {
		t.Fatal(err)
	}
	gw, ln, client := testGateway(t, gateway.Config{
		Policies:      engarde.NewPolicySet(engarde.StackProtectorPolicy()),
		DisasmWorkers: 4,
		TraceSink:     sink,
	})
	image := buildLargeImage(t, "stream-obs", 7001)
	cl := *client
	cl.BlockSize = 2 * 1024

	if v, err := provisionOnce(t, ln, &cl, image); err != nil || !v.Compliant {
		t.Fatalf("streamed provision: verdict %+v err %v", v, err)
	}
	if v, err := provisionOnce(t, ln, &cl, image); err != nil || !v.Compliant {
		t.Fatalf("digest-keyed cache hit: verdict %+v err %v", v, err)
	}
	waitFor(t, "2 served sessions", func() bool { return gw.Stats().Served == 2 })
	if hits := gw.Stats().CacheHits; hits != 1 {
		t.Fatalf("verdict cache hits = %d, want 1", hits)
	}

	var sawOverlap, sawFBTV bool
	for _, td := range sink.Recent() {
		for i := range td.Spans {
			switch td.Spans[i].Name {
			case "recv-overlap":
				sawOverlap = true
			case "first-byte-to-verdict":
				sawFBTV = true
			}
		}
	}
	if !sawOverlap {
		t.Error("no recv-overlap span: transfer and decode never ran concurrently")
	}
	if !sawFBTV {
		t.Error("no first-byte-to-verdict span recorded")
	}

	rec := scrape(t, gw.MetricsHandler(), "/metricsz")
	body := rec.Body.String()
	if errs := obs.Lint(strings.NewReader(body)); len(errs) > 0 {
		for _, e := range errs {
			t.Error(e)
		}
		t.Fatalf("exposition failed lint (%d problems)", len(errs))
	}
	if got := sampleValue(t, body, "engarde_gateway_first_byte_to_verdict_seconds_count"); got < 2 {
		t.Errorf("first-byte-to-verdict histogram count = %v, want >= 2", got)
	}
	if got := sampleValue(t, body, "engarde_gateway_frame_gap_seconds_count"); got < 1 {
		t.Errorf("frame gap histogram count = %v, want >= 1", got)
	}
}

// TestStreamingMatchesBufferedVerdicts A/Bs the escape hatch: the same
// image pair yields identical verdicts on both receive paths.
func TestStreamingMatchesBufferedVerdicts(t *testing.T) {
	good := buildImage(t, "ab-good", 7002, true)
	bad := buildImage(t, "ab-bad", 7003, false)

	for _, disable := range []bool{false, true} {
		_, ln, client := testGateway(t, gateway.Config{
			Policies:         engarde.NewPolicySet(engarde.StackProtectorPolicy()),
			DisableStreaming: disable,
		})
		if v, err := provisionOnce(t, ln, client, good); err != nil || !v.Compliant {
			t.Fatalf("disable=%v: good image verdict %+v err %v", disable, v, err)
		}
		if v, err := provisionOnce(t, ln, client, bad); err != nil || v.Compliant {
			t.Fatalf("disable=%v: bad image verdict %+v err %v", disable, v, err)
		}
	}
}

// TestStreamingCachedRejection covers the one streaming cache branch with
// no enclave work at all: a cached non-compliant verdict answered at
// last-byte, where the gateway must discard the in-flight speculative
// decode (provisionStaged's Release) without leaking it.
func TestStreamingCachedRejection(t *testing.T) {
	gw, ln, client := testGateway(t, gateway.Config{
		Policies:      engarde.NewPolicySet(engarde.StackProtectorPolicy()),
		DisasmWorkers: 4,
	})
	bin, err := toolchain.Build(toolchain.Config{
		Name: "stream-rej", Seed: 7004, NumFuncs: 48, AvgFuncInsts: 120,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl := *client
	cl.BlockSize = 2 * 1024

	if v, err := provisionOnce(t, ln, &cl, bin.Image); err != nil || v.Compliant {
		t.Fatalf("first rejection: verdict %+v err %v", v, err)
	}
	v, err := provisionOnce(t, ln, &cl, bin.Image)
	if err != nil || v.Compliant {
		t.Fatalf("cached rejection: verdict %+v err %v", v, err)
	}
	waitFor(t, "2 served sessions", func() bool { return gw.Stats().Served == 2 })
	if hits := gw.Stats().CacheHits; hits != 1 {
		t.Fatalf("verdict cache hits = %d, want 1", hits)
	}
}
