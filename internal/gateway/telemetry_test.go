package gateway_test

import (
	"bufio"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"engarde"
	"engarde/internal/gateway"
	"engarde/internal/obs"
)

// scrape runs one handler request and returns the recorded response.
func scrape(t testing.TB, h http.Handler, target string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, target, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET %s: status %d", target, rec.Code)
	}
	return rec
}

// sampleValue finds one sample line (exact series match, labels included)
// in a Prometheus text exposition and returns its value.
func sampleValue(t testing.TB, exposition, series string) float64 {
	t.Helper()
	sc := bufio.NewScanner(strings.NewReader(exposition))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		// Label values may contain spaces ("Policy Checking"), so match the
		// full series as a prefix rather than splitting the line on fields.
		if !strings.HasPrefix(line, series+" ") {
			continue
		}
		val := strings.TrimSpace(strings.TrimPrefix(line, series+" "))
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("series %s: unparseable value %q", series, val)
		}
		return v
	}
	t.Fatalf("series %s not found in exposition", series)
	return 0
}

// TestMetricsExpositionConformance scrapes /metricsz from a gateway that
// has served compliant, non-compliant and cached sessions — so every
// metric family (counters, gauges, per-phase cycles, fn-cache, latency and
// frame histograms) has live series — and runs the output through the
// strict exposition linter. /statsz must agree with the scrape because
// both read the same registry.
func TestMetricsExpositionConformance(t *testing.T) {
	gw, ln, client := testGateway(t, gateway.Config{
		Policies:       engarde.NewPolicySet(engarde.StackProtectorPolicy()),
		FnCacheEntries: 4096,
	})
	good := buildImage(t, "conf-good", 501, true)
	bad := buildImage(t, "conf-bad", 502, false)

	if v, err := provisionOnce(t, ln, client, good); err != nil || !v.Compliant {
		t.Fatalf("good image: verdict %+v err %v", v, err)
	}
	if v, err := provisionOnce(t, ln, client, good); err != nil || !v.Compliant {
		t.Fatalf("good image (cache hit): verdict %+v err %v", v, err)
	}
	if v, err := provisionOnce(t, ln, client, bad); err != nil || v.Compliant {
		t.Fatalf("bad image: verdict %+v err %v", v, err)
	}
	waitFor(t, "3 served sessions", func() bool { return gw.Stats().Served == 3 })

	rec := scrape(t, gw.MetricsHandler(), "/metricsz")
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q, want text/plain; version=0.0.4", ct)
	}
	body := rec.Body.String()
	if errs := obs.Lint(strings.NewReader(body)); len(errs) > 0 {
		for _, e := range errs {
			t.Error(e)
		}
		t.Fatalf("exposition failed lint (%d problems)", len(errs))
	}

	// Spot-check the registry against the /statsz snapshot: same objects,
	// so the values must agree exactly on a quiet gateway.
	s := gw.Stats()
	for series, want := range map[string]float64{
		"engarde_gateway_sessions_served_total":                       float64(s.Served),
		"engarde_gateway_sessions_accepted_total":                     float64(s.Accepted),
		"engarde_gateway_verdicts_total{verdict=\"compliant\"}":       float64(s.Compliant),
		"engarde_gateway_verdicts_total{verdict=\"non_compliant\"}":   float64(s.NonCompliant),
		"engarde_gateway_verdict_cache_lookups_total{result=\"hit\"}": float64(s.CacheHits),
		"engarde_gateway_sessions_active":                             0,
		"engarde_gateway_session_seconds_count":                       float64(s.Latency.Count),
	} {
		if got := sampleValue(t, body, series); got != want {
			t.Errorf("%s = %v, /statsz says %v", series, got, want)
		}
	}
	if s.FnCache == nil {
		t.Fatal("fn-cache stats missing from /statsz")
	}
	if got := sampleValue(t, body, "engarde_gateway_fn_cache_lookups_total{result=\"hit\"}"); got != float64(s.FnCache.Hits) {
		t.Errorf("fn-cache hits: exposition %v, /statsz %v", got, s.FnCache.Hits)
	}

	// Per-phase cycle totals come from the same counter the report reads.
	var phaseSum float64
	for phase, cyc := range s.PhaseCycles {
		series := "engarde_cycles_total{phase=\"" + phase + "\"}"
		got := sampleValue(t, body, series)
		if got != float64(cyc) {
			t.Errorf("%s = %v, /statsz says %v", series, got, cyc)
		}
		phaseSum += got
	}
	if phaseSum == 0 {
		t.Error("no cycles recorded in any phase")
	}
}

// TestMetricsHammerDuringProvisions scrapes /metricsz, /statsz and /tracez
// concurrently with a provisioning load — the race-detector test for the
// registry's read paths (GaugeFunc/CounterFunc closures read live gateway
// state) and for trace snapshots taken while sessions run.
func TestMetricsHammerDuringProvisions(t *testing.T) {
	sink, err := obs.NewSink(8, "")
	if err != nil {
		t.Fatal(err)
	}
	gw, ln, client := testGateway(t, gateway.Config{
		Policies:       engarde.NewPolicySet(engarde.StackProtectorPolicy()),
		FnCacheEntries: 4096,
		TraceSink:      sink,
	})
	images := [][]byte{
		buildImage(t, "hammer-0", 511, true),
		buildImage(t, "hammer-1", 512, true),
		buildImage(t, "hammer-2", 513, false),
	}

	const sessions = 12
	done := make(chan struct{})
	var wg sync.WaitGroup
	for s := 0; s < 3; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				rec := scrape(t, gw.MetricsHandler(), "/metricsz")
				if errs := obs.Lint(rec.Body); len(errs) > 0 {
					t.Errorf("mid-load exposition invalid: %v", errs[0])
					return
				}
				scrape(t, gw.StatsHandler(), "/statsz")
				scrape(t, sink.Handler(), "/tracez")
				scrape(t, sink.Handler(), "/tracez?format=chrome")
			}
		}()
	}

	var provWG sync.WaitGroup
	errCh := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		provWG.Add(1)
		go func(i int) {
			defer provWG.Done()
			image := images[i%len(images)]
			v, err := provisionOnce(t, ln, client, image)
			if err != nil {
				errCh <- err
				return
			}
			if wantCompliant := i%len(images) != 2; v.Compliant != wantCompliant {
				errCh <- &verdictMismatch{i: i, got: v.Compliant}
			}
		}(i)
	}
	provWG.Wait()
	close(done)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	waitFor(t, "all sessions served", func() bool { return gw.Stats().Served == sessions })

	// Final agreement check after the dust settles.
	body := scrape(t, gw.MetricsHandler(), "/metricsz").Body.String()
	s := gw.Stats()
	if got := sampleValue(t, body, "engarde_gateway_sessions_served_total"); got != float64(s.Served) {
		t.Errorf("served: exposition %v, /statsz %v", got, s.Served)
	}
	if len(sink.Recent()) == 0 {
		t.Error("trace sink recorded no sessions")
	}
}

type verdictMismatch struct {
	i   int
	got bool
}

func (e *verdictMismatch) Error() string {
	return "session " + strconv.Itoa(e.i) + ": unexpected verdict compliant=" + strconv.FormatBool(e.got)
}
