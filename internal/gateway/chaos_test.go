package gateway_test

// Chaos tests: the fault-injection layer (internal/faults) driven through
// the full gateway stack. The invariants are end-to-end resilience ones —
// no fault schedule may hang a session, leak a worker, or (the integrity
// property the secure channel buys) flip a verdict. Faults only ever cost
// availability: an error, a timeout, or a busy verdict.

import (
	"context"
	"errors"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"engarde"
	"engarde/internal/faults"
	"engarde/internal/gateway"
)

// chaosProb maps a fuzzable byte onto a per-operation probability in
// [0, 0.249]: high enough to bite, low enough that sessions still finish.
func chaosProb(b byte) float64 { return float64(b) / 1024 }

// soakDuration is how long TestChaosSoak runs: 2s in normal test runs,
// ENGARDE_SOAK_SECONDS in CI's dedicated chaos-soak job.
func soakDuration() time.Duration {
	if v := os.Getenv("ENGARDE_SOAK_SECONDS"); v != "" {
		if secs, err := strconv.Atoi(v); err == nil && secs > 0 {
			return time.Duration(secs) * time.Second
		}
	}
	return 2 * time.Second
}

// waitGoroutines waits for the goroutine count to settle back to the
// pre-test baseline (plus slack for the runtime's own background work).
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+8 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutine leak: %d running, baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestChaosSoak hammers one gateway with a mixed fleet: healthy tenants
// interleaved with tenants whose connections stall, trickle, truncate,
// flip bits, and error — all deterministic per-session schedules. Run
// with -race; CI's chaos-soak job extends it via ENGARDE_SOAK_SECONDS.
// This variant pins the buffered sequential receive path.
func TestChaosSoak(t *testing.T) { runChaosSoak(t, true) }

// TestStreamingChaosSoak is the same mixed fleet through the streaming
// receive path, with each session's client frame size varied so chunk
// launches and fault injections land at different stream offsets — the
// soak counterpart of FuzzStreamingFrameSchedule's schedule coverage.
func TestStreamingChaosSoak(t *testing.T) { runChaosSoak(t, false) }

func runChaosSoak(t *testing.T, disableStreaming bool) {
	baseline := runtime.NumGoroutine()
	gw, ln, client := testGateway(t, gateway.Config{
		Policies:         engarde.NewPolicySet(engarde.StackProtectorPolicy()),
		MaxConcurrent:    4,
		QueueDepth:       4, // capacity 8 < clients 12, so shedding happens
		IdleTimeout:      150 * time.Millisecond,
		SessionBudget:    time.Second,
		RetryAfterHint:   2 * time.Millisecond,
		DisableStreaming: disableStreaming,
	})
	good := buildImage(t, "soak-good", 961, true)
	bad := buildImage(t, "soak-bad", 962, false)

	const numClients = 12
	var (
		sessions       atomic.Int64
		healthyOK      atomic.Uint64 // healthy sessions, exact verdict
		healthyDropped atomic.Uint64 // healthy sessions lost to overload
		faultedOK      atomic.Uint64 // faulted sessions that still finished clean
		faultedErr     atomic.Uint64
	)
	deadline := time.Now().Add(soakDuration())
	var wg sync.WaitGroup
	for c := 0; c < numClients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				id := sessions.Add(1)
				image, wantCompliant := good, true
				if id%2 == 0 {
					image, wantCompliant = bad, false
				}
				// On the streaming path, vary the frame size per session
				// (512 B up to 64 KiB) so transfers split differently.
				cl := *client
				if !disableStreaming {
					cl.BlockSize = 1 << (9 + id%8)
				}
				if id%4 == 0 {
					// Healthy session: fault-free connection, retries through
					// shedding. If it completes, the verdict must be exact.
					v, err := cl.ProvisionRetry(ln.Dial, image, engarde.RetryPolicy{
						Attempts:  8,
						BaseDelay: 2 * time.Millisecond,
						MaxDelay:  20 * time.Millisecond,
						Seed:      id,
					})
					switch {
					case errors.Is(err, engarde.ErrAttestation):
						// A clean connection can never fail attestation.
						t.Errorf("healthy session %d: %v", id, err)
					case err != nil:
						// Overload: every attempt was shed (ErrBusy) or cut.
						// Losing availability is legal; a wrong verdict is not.
						healthyDropped.Add(1)
					case v.Compliant != wantCompliant:
						t.Errorf("healthy session %d: verdict %+v, want compliant=%v", id, v, wantCompliant)
					default:
						healthyOK.Add(1)
					}
					continue
				}
				// Faulted session: a seeded schedule mangles the connection.
				// Any availability outcome is legal; a wrong verdict is not.
				conn, err := ln.Dial()
				if err != nil {
					t.Errorf("session %d: dial: %v", id, err)
					return
				}
				cc := faults.WrapConn(conn, faults.Schedule{
					Seed:         id,
					LatencyProb:  0.05,
					PartialProb:  0.10,
					BitFlipProb:  0.05,
					StallProb:    0.02,
					Stall:        200 * time.Millisecond, // > IdleTimeout
					TruncateProb: 0.05,
					ErrorProb:    0.05,
				})
				v, err := cl.Provision(cc, image)
				cc.Close()
				switch {
				case err != nil:
					faultedErr.Add(1)
				case v.Code == engarde.CodeBusy:
					healthyDropped.Add(1)
				case v.Compliant != wantCompliant:
					t.Errorf("faulted session %d (seed %d): WRONG verdict %+v, want compliant=%v",
						id, id, v, wantCompliant)
				default:
					faultedOK.Add(1)
				}
			}
		}()
	}
	wg.Wait()

	// Clean shutdown within the drain deadline: every admitted session is
	// bounded by IdleTimeout/SessionBudget, so nothing can pin a worker.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := gw.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown under chaos: %v", err)
	}

	s := gw.Stats()
	t.Logf("soak: %d sessions (healthy ok=%d dropped=%d; faulted ok=%d err=%d); stats %+v",
		sessions.Load(), healthyOK.Load(), healthyDropped.Load(), faultedOK.Load(), faultedErr.Load(), s)
	if healthyOK.Load() == 0 {
		t.Error("soak observed no successful healthy session")
	}
	if faultedErr.Load() == 0 {
		t.Error("soak injected no effective faults; schedules too tame")
	}
	if s.Active != 0 {
		t.Errorf("active = %d after shutdown", s.Active)
	}
	if s.Served != s.Compliant+s.NonCompliant+s.Errors {
		t.Errorf("served=%d != compliant=%d + nonCompliant=%d + errors=%d",
			s.Served, s.Compliant, s.NonCompliant, s.Errors)
	}
	if s.Accepted != s.Served {
		t.Errorf("accepted=%d != served=%d: admitted connection lost without service", s.Accepted, s.Served)
	}
	waitGoroutines(t, baseline)
}

// TestChaosShutdownDrain starts Shutdown while chaotic connections are in
// flight — a peer that never reads, a 1-byte trickler, a peer that dies
// mid-protocol — and requires the drain to finish well inside its deadline
// with no goroutine left behind. The deadlines are what make this work:
// each wedged session is cut by IdleTimeout or SessionBudget.
func TestChaosShutdownDrain(t *testing.T) {
	baseline := runtime.NumGoroutine()
	gw, ln, client := testGateway(t, gateway.Config{
		MaxConcurrent: 2,
		QueueDepth:    2,
		IdleTimeout:   100 * time.Millisecond,
		SessionBudget: 600 * time.Millisecond,
	})
	image := buildImage(t, "drain-chaos", 963, false)

	// A peer that connects and never reads: the server wedges writing its
	// hello (net.Pipe is synchronous) until the idle deadline cuts it.
	silent, err := ln.Dial()
	if err != nil {
		t.Fatal(err)
	}
	defer silent.Close()

	var wg sync.WaitGroup
	// A trickler: every read and write serves one byte. Progress refreshes
	// the idle deadline, so only the session budget can end this one.
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := ln.Dial()
		if err != nil {
			return
		}
		cc := faults.WrapConn(conn, faults.Schedule{Seed: 1, PartialProb: 1})
		_, _ = client.Provision(cc, image)
		cc.Close()
	}()
	// A peer that dies mid-protocol: the 3rd read truncates the stream
	// right after the key exchange.
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := ln.Dial()
		if err != nil {
			return
		}
		cc := faults.WrapConn(conn, faults.Schedule{
			Seed:     2,
			Triggers: []faults.Trigger{{Op: faults.OpRead, N: 2, Do: faults.ActTruncate}},
		})
		_, _ = client.Provision(cc, image)
		cc.Close()
	}()

	waitFor(t, "chaotic sessions in flight", func() bool { return gw.Stats().Active >= 1 })

	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := gw.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown with chaotic in-flight connections: %v", err)
	}
	if drain := time.Since(start); drain > 5*time.Second {
		t.Errorf("drain took %v; sessions were not cut by their deadlines", drain)
	}
	wg.Wait()

	s := gw.Stats()
	if s.Active != 0 {
		t.Errorf("active = %d after drain", s.Active)
	}
	if s.TimedOut == 0 {
		t.Errorf("expected at least one idle/budget cutoff, stats %+v", s)
	}
	waitGoroutines(t, baseline)
}

// FuzzChaosSession fuzzes fault schedules over complete provisioning
// round-trips. Whatever the schedule, a session must terminate promptly
// and must never yield a wrong verdict — corrupted frames die in GCM
// verification or attestation checks, so faults cost availability only.
func FuzzChaosSession(f *testing.F) {
	gw, ln, client := testGateway(f, gateway.Config{
		Policies:       engarde.NewPolicySet(engarde.StackProtectorPolicy()),
		MaxConcurrent:  4,
		QueueDepth:     4,
		IdleTimeout:    100 * time.Millisecond,
		SessionBudget:  time.Second,
		RetryAfterHint: 2 * time.Millisecond,
	})
	_ = gw
	good := buildImage(f, "fuzz-good", 964, true)
	bad := buildImage(f, "fuzz-bad", 965, false)

	f.Add(int64(1), byte(0), byte(0), byte(0), byte(0), byte(0), byte(0), false)  // fault-free
	f.Add(int64(2), byte(16), byte(64), byte(0), byte(0), byte(0), byte(0), true) // slow + partial
	f.Add(int64(3), byte(0), byte(0), byte(32), byte(0), byte(0), byte(0), false) // bit-flips
	f.Add(int64(4), byte(0), byte(0), byte(0), byte(8), byte(16), byte(16), true) // stalls + cuts
	f.Add(int64(5), byte(8), byte(32), byte(8), byte(4), byte(8), byte(8), false) // everything at once

	f.Fuzz(func(t *testing.T, seed int64, latB, partB, flipB, stallB, truncB, errB byte, useBad bool) {
		image, wantCompliant := good, true
		if useBad {
			image, wantCompliant = bad, false
		}
		sched := faults.Schedule{
			Seed:         seed,
			LatencyProb:  chaosProb(latB),
			PartialProb:  chaosProb(partB),
			BitFlipProb:  chaosProb(flipB),
			StallProb:    chaosProb(stallB) / 4, // stalls are expensive; keep them rare
			Stall:        150 * time.Millisecond,
			TruncateProb: chaosProb(truncB),
			ErrorProb:    chaosProb(errB),
		}
		conn, err := ln.Dial()
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		cc := faults.WrapConn(conn, sched)
		type outcome struct {
			v   engarde.Verdict
			err error
		}
		done := make(chan outcome, 1)
		go func() {
			v, err := client.Provision(cc, image)
			done <- outcome{v, err}
		}()
		select {
		case out := <-done:
			cc.Close()
			if out.err != nil {
				return // availability loss: the legal failure mode
			}
			if out.v.Code == engarde.CodeBusy {
				return // shed under load: also legal
			}
			if out.v.Compliant != wantCompliant {
				t.Fatalf("schedule %+v (injected %v) flipped the verdict: %+v, want compliant=%v",
					sched, cc.Injected(), out.v, wantCompliant)
			}
		case <-time.After(20 * time.Second):
			cc.Close()
			t.Fatalf("session hung under schedule %+v (injected so far: %v)", sched, cc.Injected())
		}
	})
}
