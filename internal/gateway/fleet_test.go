package gateway_test

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"engarde"
	"engarde/internal/faults"
	"engarde/internal/gateway"
	"engarde/internal/policy/memo"
)

// TestGatewayReadyzLifecycle walks the readiness signal through the full
// gateway lifecycle: 503 before Serve, 200 while serving, 503 the moment
// Shutdown begins. Liveness stays 200 throughout — the process is up even
// when it is not accepting sessions.
func TestGatewayReadyzLifecycle(t *testing.T) {
	provider, err := engarde.NewProvider(engarde.ProviderConfig{EPCPages: 8192})
	if err != nil {
		t.Fatal(err)
	}
	gw, err := gateway.New(gateway.Config{
		Provider:       provider,
		HeapPages:      testHeapPages,
		ClientPages:    testClientPages,
		IdleTimeout:    time.Minute,
		SessionBudget:  time.Minute,
		FnCacheEntries: -1, // disabled: FnMemoHandler must 404
	})
	if err != nil {
		t.Fatal(err)
	}

	status := func(h http.Handler, method, path string) int {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest(method, path, nil))
		return rr.Code
	}

	if got := status(gw.ReadyzHandler(), "GET", "/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("readyz before Serve = %d, want 503", got)
	}
	if got := status(gw.HealthzHandler(), "GET", "/healthz"); got != http.StatusOK {
		t.Fatalf("healthz before Serve = %d, want 200", got)
	}

	ln := newPipeListener()
	serveErr := make(chan error, 1)
	go func() { serveErr <- gw.Serve(context.Background(), ln) }()
	waitFor(t, "readyz to flip to 200", func() bool {
		return status(gw.ReadyzHandler(), "GET", "/readyz") == http.StatusOK
	})
	if got := status(gw.HealthzHandler(), "GET", "/healthz"); got != http.StatusOK {
		t.Fatalf("healthz while serving = %d, want 200", got)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := gw.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if got := status(gw.ReadyzHandler(), "GET", "/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("readyz after Shutdown = %d, want 503", got)
	}
	if got := status(gw.FnMemoHandler(), "POST", "/memoz/get"); got != http.StatusNotFound {
		t.Fatalf("FnMemoHandler with cache disabled = %d, want 404", got)
	}
}

// TestGatewayRemoteMemoSharing provisions an image cold on gateway A, then
// provisions the same image on gateway B whose fn-memo remote tier points
// at A's /memoz endpoint. B must pull A's memoized per-function outcomes
// over the wire (remote hits on B, peer-served on A) and reach the same
// verdict.
func TestGatewayRemoteMemoSharing(t *testing.T) {
	gwA, lnA, clientA := testGateway(t, gateway.Config{
		Policies:      engarde.NewPolicySet(engarde.StackProtectorPolicy()),
		MaxConcurrent: 2,
	})
	mux := http.NewServeMux()
	mux.Handle("/memoz/", gwA.FnMemoHandler())
	srvA := httptest.NewServer(mux)
	defer srvA.Close()

	gwB, lnB, clientB := testGateway(t, gateway.Config{
		Policies:      engarde.NewPolicySet(engarde.StackProtectorPolicy()),
		MaxConcurrent: 2,
		FnCachePeers:  []string{srvA.URL + "/memoz"},
	})

	image := buildImage(t, "shared", 607, true)
	vA, err := provisionOnce(t, lnA, clientA, image)
	if err != nil || !vA.Compliant {
		t.Fatalf("provision on A: %+v, %v", vA, err)
	}
	waitFor(t, "A to memoize its provision", func() bool {
		st := gwA.Stats()
		return st.FnCache != nil && st.FnCache.Entries > 0
	})

	vB, err := provisionOnce(t, lnB, clientB, image)
	if err != nil {
		t.Fatalf("provision on B: %v", err)
	}
	if vB.Compliant != vA.Compliant || vB.Code != vA.Code {
		t.Fatalf("verdicts diverge: A=%+v B=%+v", vA, vB)
	}
	waitFor(t, "B to record remote fn-memo hits", func() bool {
		st := gwB.Stats()
		return st.FnCache != nil && st.FnCache.RemoteHits > 0
	})
	if st := gwB.Stats(); st.FnCache.RemoteFaults != 0 {
		t.Errorf("B remote faults = %d, want 0", st.FnCache.RemoteFaults)
	}
	if st := gwA.Stats(); st.FnCache.PeerServed == 0 {
		t.Errorf("A served no records to its peer: %+v", st.FnCache)
	}
}

// TestGatewayRemoteMemoChaosEquivalence is the resilience acceptance test:
// a fleet peer set consisting of one dead endpoint and one byte-flipping
// endpoint must trip the remote tier's circuit breaker and degrade the
// cache to its local tiers — without ever corrupting a result or changing
// a verdict relative to a gateway that has no remote tier at all.
func TestGatewayRemoteMemoChaosEquivalence(t *testing.T) {
	// Dead peer: a listener that is already closed, so every dial fails.
	deadLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadURL := "http://" + deadLn.Addr().String() + "/memoz"
	deadLn.Close()

	// Byte-flipping peer: a real memo server reached through a transport
	// that flips one bit in every read and write, so every exchange is
	// mangled on the wire. The CRC-framed record format must reject all
	// of it.
	peerCache, err := memo.Open(memo.Config{Entries: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer peerCache.Close()
	flipSrv := httptest.NewServer(http.StripPrefix("/memoz", memo.Handler(peerCache)))
	defer flipSrv.Close()
	dialer := &net.Dialer{Timeout: time.Second}
	chaosClient := &http.Client{Transport: &http.Transport{
		DisableKeepAlives: true,
		DialContext: func(ctx context.Context, network, addr string) (net.Conn, error) {
			conn, err := dialer.DialContext(ctx, network, addr)
			if err != nil {
				return nil, err
			}
			return faults.WrapConn(conn, faults.Schedule{Seed: 11, BitFlipProb: 1}), nil
		},
	}}

	control, lnControl, clientControl := testGateway(t, gateway.Config{
		Policies:      engarde.NewPolicySet(engarde.StackProtectorPolicy()),
		MaxConcurrent: 2,
	})
	_ = control
	chaos, lnChaos, clientChaos := testGateway(t, gateway.Config{
		Policies:             engarde.NewPolicySet(engarde.StackProtectorPolicy()),
		MaxConcurrent:        2,
		FnCachePeers:         []string{deadURL, flipSrv.URL + "/memoz"},
		FnCacheRemoteTimeout: time.Second,
		FnCacheRemoteClient:  chaosClient,
	})

	// Four distinct images (three compliant, one violating) so every
	// provision is a cold, full pipeline run that attempts a peer fetch.
	images := [][]byte{
		buildImage(t, "eq-a", 701, true),
		buildImage(t, "eq-b", 702, true),
		buildImage(t, "eq-c", 703, true),
		buildImage(t, "eq-bad", 704, false),
	}
	for i, image := range images {
		vc, err := provisionOnce(t, lnControl, clientControl, image)
		if err != nil {
			t.Fatalf("control provision %d: %v", i, err)
		}
		vx, err := provisionOnce(t, lnChaos, clientChaos, image)
		if err != nil {
			t.Fatalf("chaos provision %d: %v", i, err)
		}
		if vx.Compliant != vc.Compliant || vx.Code != vc.Code {
			t.Fatalf("image %d: chaos verdict %+v diverges from control %+v", i, vx, vc)
		}
	}

	waitFor(t, "remote breaker to trip", func() bool {
		st := chaos.Stats()
		return st.FnCache != nil && st.FnCache.RemoteTrips >= 1
	})
	st := chaos.Stats()
	if st.FnCache.RemoteFaults < 3 {
		t.Errorf("remote faults = %d, want >= breaker threshold (3)", st.FnCache.RemoteFaults)
	}
	if st.FnCache.RemoteHits != 0 {
		t.Errorf("remote hits = %d through dead/corrupting peers, want 0", st.FnCache.RemoteHits)
	}
	// No mangled put may have installed a record on the flipping peer.
	if pst := peerCache.Stats(); pst.PeerStored != 0 {
		t.Errorf("byte-flipped puts stored %d records on the peer, want 0", pst.PeerStored)
	}
	// The local tiers are untouched: a repeat provision of a known image
	// is a verdict-cache hit and still compliant.
	v, err := provisionOnce(t, lnChaos, clientChaos, images[0])
	if err != nil || !v.Compliant {
		t.Fatalf("repeat provision after breaker trip: %+v, %v", v, err)
	}
}
