// Package gateway is the production serving layer over the EnGarde
// library: a multi-tenant provisioning service that turns the paper's
// one-shot, provisioning-time inspection into an amortized pipeline.
//
// The paper's check runs once per (image, policy-set) pair and is
// deterministic, so a gateway serving provisioning traffic from many
// tenants can treat verification as a service with shared, reusable work
// (cf. Confidential Attestation and MAGE in PAPERS.md). The gateway adds
// the three things cmd/engarde-host's ad-hoc accept loop lacked:
//
//   - Admission control: a bounded worker pool (MaxConcurrent enclaves in
//     flight), a bounded wait queue, typed overload shedding beyond both
//     (a busy verdict with a Retry-After hint, never a silent close), and
//     per-frame idle deadlines plus a total session budget so neither a
//     stalled nor a trickling tenant can pin a worker.
//   - A verdict cache: content-addressed by SHA-256(image) ×
//     PolicySet.Fingerprint(). A byte-identical binary resubmitted under an
//     identical policy set skips disassembly and policy checking entirely
//     (sound because the check is a pure function of both inputs); the
//     Report records the hit.
//   - Observability and lifecycle: a metrics registry (internal/obs) behind
//     both a Prometheus /metricsz exposition and the /statsz JSON snapshot
//     (admissions, verdicts, cache hit rates, per-phase cycle totals,
//     latency/queue-wait/frame-size histograms), a per-session trace with
//     spans for every protocol step and pipeline phase (Config.TraceSink,
//     /tracez), structured logs carrying the trace ID, and
//     Serve(ctx)/Shutdown(ctx) with connection draining.
//
// Every connection still gets its own private enclave. Without pooling it
// is freshly measured and destroyed at session end. With Config.EnclavePool
// the measured build itself is amortized: one template enclave is built
// and snapshotted at startup, sessions check out clones of that snapshot
// (bit-identical pages, same MRENCLAVE, fresh enclave identity and
// keypair), and returned enclaves are scrubbed back to the pristine
// snapshot image before reuse — so the attestation story and the verdict
// are exactly those of a fresh build (TestPooledProvisionMatchesFresh),
// and no tenant's bytes survive into the next session.
package gateway

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"engarde"
	"engarde/internal/cycles"
	"engarde/internal/obs"
	"engarde/internal/policy/memo"
	"engarde/internal/secchan"
)

// Defaults for Config fields left zero.
const (
	DefaultMaxConcurrent  = 8
	DefaultIdleTimeout    = 10 * time.Second
	DefaultSessionBudget  = 30 * time.Second
	DefaultCacheEntries   = 1024
	DefaultRetryAfterHint = time.Second
)

// Config configures a Gateway.
type Config struct {
	// Provider is the SGX platform to create enclaves on. Required.
	Provider *engarde.Provider
	// Policies is the policy set every tenant's code is checked against
	// (the provider side of the paper's mutual agreement). May be nil for
	// an empty set.
	Policies *engarde.PolicySet
	// HeapPages / ClientPages size each connection's enclave.
	HeapPages   int
	ClientPages int
	// DisasmWorkers / PolicyWorkers shard each session's disassembly and
	// policy-checking passes (see engarde.EnclaveConfig); 0 means
	// GOMAXPROCS, 1 forces the sequential paths.
	DisasmWorkers int
	PolicyWorkers int
	// DisableStreaming reverts sessions to the sequential pipeline: receive
	// the whole encrypted image, then hash, disassemble, and policy-check.
	// By default the gateway streams — decryption, hashing, and speculative
	// disassembly overlap the transfer, with identical verdicts and cycle
	// charges (TestStreamingMatchesSequential). The escape hatch exists for
	// A/B measurement and incident triage, not because the paths can
	// disagree.
	DisableStreaming bool

	// MaxConcurrent bounds in-flight provisions (worker-pool size).
	// Default DefaultMaxConcurrent.
	MaxConcurrent int
	// QueueDepth bounds connections waiting for a worker beyond the
	// in-flight ones. 0 means 2×MaxConcurrent; negative means no queue
	// (reject unless a worker is idle).
	QueueDepth int
	// IdleTimeout is the per-frame idle deadline: every read or write on an
	// admitted connection must make progress within it, so a stalled or
	// trickling peer is cut off quickly while a steadily streaming one is
	// not. Default DefaultIdleTimeout; negative disables.
	IdleTimeout time.Duration
	// SessionBudget bounds each admitted session end to end, regardless of
	// progress — the backstop that keeps a 1-byte-per-interval trickler
	// from holding a worker indefinitely. Default DefaultSessionBudget;
	// negative disables.
	SessionBudget time.Duration
	// RetryAfterHint is the backoff hint attached to busy verdicts when
	// admission control sheds a connection. Default DefaultRetryAfterHint.
	RetryAfterHint time.Duration
	// CacheEntries bounds the verdict cache. 0 means DefaultCacheEntries;
	// negative disables caching.
	CacheEntries int
	// FnCacheEntries bounds the function-result cache shared by every
	// enclave the gateway creates (warm-path provisioning: per-function
	// policy outcomes keyed by content digest × module fingerprint, so a
	// second tenant image sharing the approved libc skips re-checking it).
	// 0 means the memo package's default capacity; negative disables the
	// cache entirely.
	FnCacheEntries int
	// FnCachePath, when non-empty, backs the function-result cache with a
	// persistent append log so restarts provision warm. Ignored when
	// FnCacheEntries is negative.
	FnCachePath string
	// FnCacheReprobe overrides how long the fn-cache disk tier's circuit
	// breaker stays open before re-probing the disk; 0 means the memo
	// package default.
	FnCacheReprobe time.Duration
	// FnCacheFS overrides the filesystem behind the fn-cache disk tier
	// (fault injection in tests); nil means the real one.
	FnCacheFS engarde.FnCacheFS
	// FnCachePeers, when non-empty, enables the fn-cache remote tier:
	// base URLs of peer gatewayd /memoz endpoints to batch-fetch memoized
	// outcomes from (and asynchronously push fresh ones to). The tier
	// sits behind its own circuit breaker, so a sick peer degrades the
	// gateway to local tiers, never blocks or corrupts a provision.
	FnCachePeers []string
	// FnCacheRemoteTimeout bounds one peer round-trip; 0 means the memo
	// package default.
	FnCacheRemoteTimeout time.Duration
	// FnCacheRemoteClient overrides the HTTP client used for peer calls
	// (fault injection in tests wraps its transport in faults.ChaosConn).
	FnCacheRemoteClient *http.Client

	// EnclavePool, when positive, keeps that many snapshot-cloned,
	// attestation-ready enclaves checked in: sessions check one out in
	// microseconds (the pool-checkout span replaces create-enclave),
	// background workers refill after checkout, and returned enclaves are
	// scrubbed back to the pristine snapshot image before re-entering the
	// pool. 0 disables pooling — every session builds its enclave the
	// measured way, as before.
	EnclavePool int
	// PoolRefillWorkers sizes the background clone/refill worker set;
	// 0 means DefaultPoolRefillWorkers. Ignored when EnclavePool is 0.
	PoolRefillWorkers int
	// PoolCheckoutWait bounds how long a session waits for a warm enclave
	// before falling back to the cold path. 0 means
	// DefaultPoolCheckoutWait; negative means never wait (warm only when
	// one is ready instantly). Ignored when EnclavePool is 0.
	PoolCheckoutWait time.Duration
	// PoolHooks injects faults into the pool lifecycle (chaos tests).
	PoolHooks *PoolHooks
	// LoseEnclaveEvery, when positive, is a failure-injection drill: every
	// Nth session's enclave has its EPC pages reclaimed (EREMOVE-style)
	// immediately before provisioning runs, exercising the mid-provision
	// enclave-loss recovery path end to end — the session must still
	// complete with its correct verdict on a replacement enclave.
	// Production deployments leave it 0.
	LoseEnclaveEvery int

	// Counter receives per-phase cycle charges from every enclave and
	// feeds the stats endpoint. If nil, the Provider's counter is used;
	// phase stats are empty when both are nil.
	Counter *cycles.Counter
	// Logger receives structured session records (admission rejection,
	// serve outcome, shutdown), each carrying the session's trace ID. Nil
	// falls back to a Logf adapter when Logf is set, else logging is off.
	Logger *slog.Logger
	// Logf, when set and Logger is nil, receives one rendered line per log
	// record at info level and above. Printf-style; kept for callers
	// predating Logger.
	Logf func(format string, args ...any)
	// TraceSink, when set, receives every session's finished trace (span
	// timeline plus per-phase cycle attribution) — serve its Handler at
	// /tracez and point it at a directory for Chrome trace files.
	TraceSink *obs.Sink
	// OnServed, when set, is called after each admitted connection is
	// served: rep/err are ServeProvision's results (encl is nil when
	// enclave creation itself failed). It runs on the worker goroutine
	// before the enclave is destroyed, so it may still Enter() a compliant
	// enclave — cmd/engarde-host uses this to transfer control and print
	// the per-connection summary.
	OnServed func(conn net.Conn, encl *engarde.Enclave, rep *engarde.Report, err error)
}

// Gateway is a pooled, cached, observable provisioning service.
type Gateway struct {
	cfg      Config
	counter  *cycles.Counter
	policyFP [sha256.Size]byte
	cache    *verdictCache    // nil when disabled
	fnCache  *engarde.FnCache // shared across enclaves; nil when disabled
	pool     *enclavePool     // warm enclave pool; nil when disabled
	metrics  *metrics
	log      *slog.Logger

	queue    chan queuedConn
	stop     chan struct{}
	stopOnce sync.Once

	ready atomic.Bool // readiness: true while Serve runs, false during drain

	sessionSeq atomic.Uint64 // session ordinal, drives the LoseEnclaveEvery drill

	mu        sync.Mutex
	shutdown  bool
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}

	connWG   sync.WaitGroup // admitted connections
	workerWG sync.WaitGroup // worker goroutines
}

// queuedConn is one admitted connection waiting for a worker, stamped at
// admission so the queue-wait histogram records how long it sat.
type queuedConn struct {
	conn net.Conn
	at   time.Time
}

// New builds a gateway and starts its worker pool.
func New(cfg Config) (*Gateway, error) {
	if cfg.Provider == nil {
		return nil, errors.New("gateway: Config.Provider is required")
	}
	if cfg.Policies == nil {
		cfg.Policies = engarde.NewPolicySet()
	}
	if cfg.MaxConcurrent == 0 {
		cfg.MaxConcurrent = DefaultMaxConcurrent
	}
	if cfg.MaxConcurrent < 1 {
		return nil, fmt.Errorf("gateway: MaxConcurrent %d < 1", cfg.MaxConcurrent)
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 2 * cfg.MaxConcurrent
	}
	if cfg.QueueDepth < 0 {
		cfg.QueueDepth = 0 // no waiting room
	}
	if cfg.IdleTimeout == 0 {
		cfg.IdleTimeout = DefaultIdleTimeout
	}
	if cfg.SessionBudget == 0 {
		cfg.SessionBudget = DefaultSessionBudget
	}
	if cfg.RetryAfterHint <= 0 {
		cfg.RetryAfterHint = DefaultRetryAfterHint
	}
	counter := cfg.Counter
	if counter == nil {
		counter = cfg.Provider.Counter()
	}
	logger := cfg.Logger
	if logger == nil && cfg.Logf != nil {
		logger = obs.LogfLogger(slog.LevelInfo, cfg.Logf)
	}
	if logger == nil {
		logger = obs.DiscardLogger()
	}
	g := &Gateway{
		cfg:       cfg,
		counter:   counter,
		log:       logger,
		policyFP:  cfg.Policies.Fingerprint(),
		queue:     make(chan queuedConn, cfg.QueueDepth),
		stop:      make(chan struct{}),
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[net.Conn]struct{}),
	}
	switch {
	case cfg.CacheEntries < 0:
		// caching disabled
	case cfg.CacheEntries == 0:
		g.cache = newVerdictCache(DefaultCacheEntries)
	default:
		g.cache = newVerdictCache(cfg.CacheEntries)
	}
	if cfg.FnCacheEntries >= 0 {
		fc, err := engarde.OpenFnCacheWith(engarde.FnCacheConfig{
			Entries:         cfg.FnCacheEntries,
			Path:            cfg.FnCachePath,
			FS:              cfg.FnCacheFS,
			ReprobeInterval: cfg.FnCacheReprobe,
			Remote: memo.RemoteConfig{
				Peers:   cfg.FnCachePeers,
				Timeout: cfg.FnCacheRemoteTimeout,
				Client:  cfg.FnCacheRemoteClient,
			},
		})
		if err != nil {
			return nil, fmt.Errorf("gateway: opening function-result cache: %w", err)
		}
		g.fnCache = fc
	}
	if cfg.EnclavePool > 0 {
		pool, err := newEnclavePool(g)
		if err != nil {
			g.closeFnCache()
			return nil, fmt.Errorf("gateway: building enclave pool: %w", err)
		}
		g.pool = pool
	}
	// After the caches, pool and counter so the registry's live-read series
	// match what this gateway actually has, before the workers so no
	// instrument is ever nil on the hot path.
	g.metrics = newMetrics(g)
	if g.pool != nil {
		g.pool.start(cfg.PoolRefillWorkers)
	}
	g.workerWG.Add(cfg.MaxConcurrent)
	for i := 0; i < cfg.MaxConcurrent; i++ {
		go g.worker()
	}
	return g, nil
}

// Serve accepts connections on ln until the listener fails, ctx is
// cancelled, or Shutdown is called. It may be called on several listeners
// concurrently; all are closed by Shutdown. Returns nil on clean shutdown,
// ctx.Err() on cancellation.
func (g *Gateway) Serve(ctx context.Context, ln net.Listener) error {
	g.mu.Lock()
	if g.shutdown {
		g.mu.Unlock()
		ln.Close()
		return errors.New("gateway: already shut down")
	}
	g.listeners[ln] = struct{}{}
	g.mu.Unlock()
	g.ready.Store(true)
	defer func() {
		g.mu.Lock()
		delete(g.listeners, ln)
		g.mu.Unlock()
	}()

	if ctx != nil {
		watchDone := make(chan struct{})
		defer close(watchDone)
		go func() {
			select {
			case <-ctx.Done():
				ln.Close()
			case <-watchDone:
			}
		}()
	}

	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx != nil && ctx.Err() != nil {
				return ctx.Err()
			}
			if g.isShutdown() {
				return nil
			}
			return err
		}
		g.admit(conn)
	}
}

func (g *Gateway) isShutdown() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.shutdown
}

// admit applies admission control: the connection is queued for a worker,
// or shed with a typed busy verdict when the pool and queue are both full.
// The queue write happens under g.mu with the shutdown flag checked, so
// nothing is ever queued after Shutdown begins.
func (g *Gateway) admit(conn net.Conn) {
	g.mu.Lock()
	if g.shutdown {
		g.mu.Unlock()
		g.metrics.rejected.Inc()
		conn.Close()
		return
	}
	select {
	case g.queue <- queuedConn{conn: conn, at: time.Now()}:
		// connWG.Add happens under g.mu so Shutdown's Wait cannot race it.
		g.connWG.Add(1)
		g.mu.Unlock()
		g.metrics.accepted.Inc()
	default:
		// Shed: tell the peer it was turned away and when to come back,
		// off the accept loop so a slow rejected peer cannot stall accepts.
		// The writer is covered by connWG (added under g.mu) and bounded by
		// a short write deadline, so Shutdown still terminates promptly.
		g.connWG.Add(1)
		g.mu.Unlock()
		g.metrics.shed.Inc()
		g.log.Warn("gateway: shedding connection",
			"remote", connAddr(conn), "reason", "pool and queue full")
		go func() {
			defer g.connWG.Done()
			defer conn.Close()
			_ = conn.SetWriteDeadline(time.Now().Add(time.Second))
			_ = engarde.SendBusy(conn, g.cfg.RetryAfterHint)
		}()
	}
}

// Shutdown stops accepting, drains admitted connections, and waits for
// them. If ctx expires first, remaining connections are force-closed and
// ctx.Err() is returned once the workers have observed the closures.
func (g *Gateway) Shutdown(ctx context.Context) error {
	g.ready.Store(false)
	g.mu.Lock()
	g.shutdown = true
	for ln := range g.listeners {
		ln.Close()
	}
	g.mu.Unlock()
	// Workers finish the queue, then exit; newly accepted conns are closed
	// by admit. connWG covers everything already admitted.
	g.stopOnce.Do(func() { close(g.stop) })

	done := make(chan struct{})
	go func() {
		g.connWG.Wait()
		g.workerWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		g.closePool()
		g.closeFnCache()
		return nil
	case <-ctx.Done():
		// Force-close in-flight sessions and discard anything still queued;
		// workers observing the closed conns fail fast.
		g.mu.Lock()
		for c := range g.conns {
			c.Close()
		}
		g.mu.Unlock()
		for {
			select {
			case q := <-g.queue:
				q.conn.Close()
				g.connWG.Done()
				continue
			default:
			}
			break
		}
		<-done
		g.closePool()
		g.closeFnCache()
		return ctx.Err()
	}
}

// closePool drains the warm pool once every worker has exited: in-flight
// clone and scrub goroutines are waited for, pooled enclaves destroyed, so
// the device's EPC slot balance returns to its pre-pool state.
func (g *Gateway) closePool() {
	if g.pool != nil {
		g.pool.close()
	}
}

// closeFnCache flushes the function-result cache's disk tier once every
// worker has drained (Cache.Close is idempotent, so repeated Shutdown
// calls are harmless).
func (g *Gateway) closeFnCache() {
	if g.fnCache == nil {
		return
	}
	if err := g.fnCache.Close(); err != nil {
		g.log.Error("gateway: closing function-result cache", "err", err)
	}
}

// worker serves queued connections until shutdown, then drains what is
// still queued and exits.
func (g *Gateway) worker() {
	defer g.workerWG.Done()
	for {
		select {
		case q := <-g.queue:
			g.handle(q)
		case <-g.stop:
			for {
				select {
				case q := <-g.queue:
					g.handle(q)
				default:
					return
				}
			}
		}
	}
}

func (g *Gateway) trackConn(conn net.Conn) {
	g.mu.Lock()
	g.conns[conn] = struct{}{}
	g.mu.Unlock()
}

func (g *Gateway) untrackConn(conn net.Conn) {
	g.mu.Lock()
	delete(g.conns, conn)
	g.mu.Unlock()
}

// handle serves one admitted connection: fresh enclave, protocol, verdict
// cache, telemetry, teardown.
func (g *Gateway) handle(q queuedConn) {
	conn := q.conn
	defer g.connWG.Done()
	defer conn.Close()
	g.trackConn(conn)
	defer g.untrackConn(conn)
	g.metrics.queueWait.Observe(uint64(time.Since(q.at) / time.Microsecond))
	g.metrics.active.Inc()
	defer g.metrics.active.Dec()

	// The session trace spans the protocol steps and pipeline phases. The
	// counter is shared across workers, so per-phase cycle deltas are an
	// attribution estimate under concurrency (see obs.Trace); wall-clock
	// spans are exact either way.
	tr := obs.NewTrace("provision", g.counter)

	// Per-frame idle deadline + total session budget (internal/secchan):
	// silence kills a session within IdleTimeout, and no amount of 1-byte
	// trickling extends it past SessionBudget.
	var rw io.ReadWriter = conn
	if g.cfg.IdleTimeout > 0 || g.cfg.SessionBudget > 0 {
		idle, budget := g.cfg.IdleTimeout, g.cfg.SessionBudget
		if idle < 0 {
			idle = 0
		}
		if budget < 0 {
			budget = 0
		}
		rw = secchan.NewLimited(conn, idle, budget)
	}
	// The per-session observer layers frame-arrival timestamps (inter-frame
	// gap histogram) over the shared size histograms; observations happen on
	// this worker goroutine only.
	rw = secchan.ObserveFrames(rw, &sessionFrames{m: g.metrics})
	start := time.Now()

	// Warm path: check a cloned, attestation-ready enclave out of the pool
	// (microseconds; the pool-checkout span stands where create-enclave
	// would). A drained pool falls through to the cold path below, so
	// pooling changes latency, never availability.
	encl, warm, aerr := g.acquireEnclave(tr)
	if aerr != nil {
		g.metrics.errs.Inc()
		g.log.Error("gateway: creating enclave",
			"trace", tr.ID(), "remote", connAddr(conn), "err", aerr)
		g.finishTrace(tr)
		if g.cfg.OnServed != nil {
			g.cfg.OnServed(conn, nil, nil, aerr)
		}
		return
	}
	defer func() {
		// encl and warm may have been swapped by a mid-provision enclave
		// failover; the defer releases whatever the session ended on.
		if encl == nil {
			return
		}
		if warm {
			// Detach the session trace before the enclave outlives it, then
			// hand the enclave back for scrubbing and reuse.
			encl.SetTrace(nil)
			g.pool.release(encl)
			return
		}
		encl.Destroy()
	}()

	// discardLost hands the reclaimed corpse back: a pooled enclave goes
	// through discard (it is empty — nothing to scrub), a cold one is
	// destroyed directly. Either way encl is cleared so the session defer
	// and the failover below cannot touch it again.
	discardLost := func() {
		if warm {
			encl.SetTrace(nil)
			g.pool.lost.Add(1)
			g.pool.discard(encl)
		} else {
			encl.Destroy()
		}
		encl, warm = nil, false
	}

	// drill is the LoseEnclaveEvery failure-injection hook: it fires inside
	// the provisioning step — after the image arrived, before the pipeline
	// runs — so every Nth session exercises the exact recovery path a real
	// EPC reclaim mid-session would.
	drill := func() {
		if n := g.cfg.LoseEnclaveEvery; n > 0 && g.sessionSeq.Add(1)%uint64(n) == 0 {
			encl.Reclaim()
		}
	}

	// recoverLost is the transparent enclave failover: when provisioning
	// failed because the enclave's EPC pages were reclaimed under it, the
	// plaintext image is still in hand, so the session is re-run in full on
	// a replacement enclave (pool clone or cold build — identical MRENCLAVE
	// either way) instead of surfacing a machinery failure to a client that
	// did nothing wrong. One replacement attempt: a second loss means the
	// host is shedding EPC faster than sessions run, and the typed
	// backend-lost verdict (failNotify) correctly pushes the client to
	// another backend.
	recoverLost := func(image []byte, perr error) (*engarde.Report, error) {
		if !errors.Is(perr, engarde.ErrEnclaveLost) {
			return nil, perr
		}
		g.metrics.enclaveLost.Inc()
		g.log.Warn("gateway: enclave lost mid-provision, failing over",
			"trace", tr.ID(), "remote", connAddr(conn), "err", perr)
		discardLost()
		sp := tr.StartSpan("enclave-failover")
		defer sp.End()
		var ferr error
		encl, warm, ferr = g.acquireEnclave(tr)
		if ferr != nil {
			return nil, fmt.Errorf("gateway: replacing lost enclave: %w", errors.Join(ferr, perr))
		}
		rep, rerr := g.provision(encl, image)
		if rerr == nil {
			g.metrics.enclaveFailovers.Inc()
		}
		return rep, rerr
	}

	ctx := obs.WithTrace(context.Background(), tr)
	var rep *engarde.Report
	var err error
	if g.cfg.DisableStreaming {
		rep, err = encl.ServeProvisionFuncCtx(ctx, rw, func(image []byte) (*engarde.Report, error) {
			drill()
			rep, err := g.provision(encl, image)
			if err != nil {
				return recoverLost(image, err)
			}
			return rep, nil
		})
	} else {
		rep, err = encl.ServeProvisionStreamingFuncCtx(ctx, rw, func(st *engarde.StagedImage) (*engarde.Report, error) {
			drill()
			rep, err := g.provisionStaged(encl, st)
			if err != nil {
				// The staged plaintext survives the loss; any speculative
				// decode state died with the first attempt, so the replay
				// runs the buffered path — identical verdicts by
				// construction (TestStreamingMatchesSequential).
				st.Release()
				return recoverLost(st.Image, err)
			}
			return rep, nil
		})
	}
	dur := time.Since(start)
	g.metrics.served.Inc()
	g.metrics.latency.Observe(uint64(dur / time.Millisecond))
	switch {
	case err != nil:
		g.metrics.errs.Inc()
		if reason := timeoutReason(err); reason != "" {
			g.metrics.timeouts.Inc()
			g.log.Warn("gateway: session timed out",
				"trace", tr.ID(), "remote", connAddr(conn), "reason", reason, "err", err)
		} else {
			g.log.Warn("gateway: session failed",
				"trace", tr.ID(), "remote", connAddr(conn), "err", err)
		}
	case rep.Compliant:
		g.metrics.compliant.Inc()
		g.log.Info("gateway: session served",
			"trace", tr.ID(), "remote", connAddr(conn), "verdict", "compliant",
			"cache_hit", rep.CacheHit, "dur_ms", dur.Milliseconds())
	default:
		g.metrics.nonCompliant.Inc()
		g.log.Info("gateway: session served",
			"trace", tr.ID(), "remote", connAddr(conn), "verdict", "non-compliant",
			"cache_hit", rep.CacheHit, "dur_ms", dur.Milliseconds())
	}
	g.finishTrace(tr)
	if g.cfg.OnServed != nil {
		g.cfg.OnServed(conn, encl, rep, err)
	}
}

// acquireEnclave obtains the session's enclave: a warm pool checkout when
// one is ready (the pool itself drains lost enclaves, so a warm result is
// healthy at handoff), else a cold measured build. Used both at session
// start and to find a replacement during mid-provision enclave failover.
func (g *Gateway) acquireEnclave(tr *obs.Trace) (*engarde.Enclave, bool, error) {
	if g.pool != nil {
		sp := tr.StartPhase("pool-checkout")
		encl, warm := g.pool.checkout()
		sp.End()
		if warm {
			encl.SetTrace(tr)
			return encl, true, nil
		}
	}
	encl, err := g.cfg.Provider.CreateEnclave(engarde.EnclaveConfig{
		Policies:      g.cfg.Policies,
		HeapPages:     g.cfg.HeapPages,
		ClientPages:   g.cfg.ClientPages,
		DisasmWorkers: g.cfg.DisasmWorkers,
		PolicyWorkers: g.cfg.PolicyWorkers,
		FnCache:       g.fnCache,
		Trace:         tr,
	})
	return encl, false, err
}

// finishTrace closes the session trace, feeds its spans into the aggregate
// span-duration histograms, and hands it to the configured sink — all off
// the protocol path, after the verdict went out.
func (g *Gateway) finishTrace(tr *obs.Trace) {
	tr.Finish()
	g.metrics.observeTrace(tr.Snapshot())
	g.cfg.TraceSink.Record(tr)
}

// provision is the cache-aware provisioning step handed to
// ServeProvisionFunc: hash the decrypted image, look up the verdict under
// (image, policy fingerprint), and either reuse it or run the full
// pipeline and remember the outcome.
func (g *Gateway) provision(encl *engarde.Enclave, image []byte) (*engarde.Report, error) {
	if g.cache == nil {
		return encl.Provision(image)
	}
	key := cacheKey{image: sha256.Sum256(image), policy: g.policyFP}
	if prior, ok := g.cache.get(key); ok {
		g.metrics.cacheHits.Inc()
		if !prior.Compliant {
			// A cached rejection needs no enclave work at all: the verdict
			// is the whole outcome.
			rep := *prior
			rep.CacheHit = true
			return &rep, nil
		}
		// A cached compliant verdict still loads the code — the tenant gets
		// a real provisioned enclave — but skips disassembly and policy
		// checking, the dominant cost (paper Figures 3-5).
		return encl.ProvisionPrechecked(image, prior)
	}
	g.metrics.cacheMisses.Inc()
	rep, err := encl.Provision(image)
	if err == nil {
		g.cache.put(key, rep)
	}
	return rep, err
}

// provisionStaged is provision for the streaming path. The digest was
// computed incrementally while frames arrived, so the verdict-cache lookup
// fires the instant the last byte lands — no second pass over the image.
func (g *Gateway) provisionStaged(encl *engarde.Enclave, st *engarde.StagedImage) (*engarde.Report, error) {
	if g.cache == nil {
		return encl.ProvisionStaged(st)
	}
	key := cacheKey{image: st.Digest, policy: g.policyFP}
	if prior, ok := g.cache.get(key); ok {
		g.metrics.cacheHits.Inc()
		if !prior.Compliant {
			// A cached rejection does no enclave work, so the in-flight
			// speculative decode must be discarded here.
			st.Release()
			rep := *prior
			rep.CacheHit = true
			return &rep, nil
		}
		return encl.ProvisionStagedPrechecked(st, prior)
	}
	g.metrics.cacheMisses.Inc()
	rep, err := encl.ProvisionStaged(st)
	if err == nil {
		g.cache.put(key, rep)
	}
	return rep, err
}

// timeoutReason classifies a session error as one of the typed deadline
// outcomes ("" when it is neither): "idle-timeout" — the peer went silent
// mid-session; "session-budget" — the session exceeded its total budget.
func timeoutReason(err error) string {
	switch {
	case errors.Is(err, secchan.ErrIdleTimeout):
		return "idle-timeout"
	case errors.Is(err, secchan.ErrSessionBudget):
		return "session-budget"
	}
	return ""
}

func connAddr(conn net.Conn) string {
	if addr := conn.RemoteAddr(); addr != nil {
		return addr.String()
	}
	return "<unknown>"
}
