package gateway

// The enclave warm pool. BENCH_5/BENCH_6 showed the create-enclave span
// (EADD/EEXTEND/EINIT of every page plus RSA keygen) dwarfing the actual
// provisioning work, so the gateway keeps N snapshot-cloned,
// attestation-ready enclaves checked in. A session checks one out in
// microseconds (the pool-checkout span replaces create-enclave on warm
// sessions), refill workers clone replacements in the background, and
// returned enclaves are scrubbed back to the snapshot image — erasing all
// client residue — before re-entering the pool. A drained pool degrades to
// the cold path; it never blocks admission control.

import (
	"log/slog"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"engarde"
	"engarde/internal/obs"
)

// Pool defaults.
const (
	DefaultPoolRefillWorkers = 2
	DefaultPoolCheckoutWait  = 100 * time.Millisecond
)

// PoolHooks are fault-injection points for the chaos tests. Each hook may
// be nil. A non-nil error from BeforeClone or AfterClone makes that refill
// attempt fail (AfterClone's enclave is destroyed first — "enclave died
// mid-refill"); an error from BeforeScrub discards the returned enclave
// instead of recycling it.
type PoolHooks struct {
	BeforeClone func() error
	AfterClone  func(e *engarde.Enclave) error
	BeforeScrub func() error
}

// enclavePool keeps Config.EnclavePool cloned enclaves ready.
type enclavePool struct {
	snap   *engarde.EnclaveSnapshot
	hooks  *PoolHooks
	log    *slog.Logger
	target int
	wait   time.Duration

	slots    chan *engarde.Enclave // checked-in, ready enclaves
	kick     chan struct{}         // refill nudge (buffered 1, never closed)
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	waitHist *obs.Histogram // checkout wait, µs; set by newMetrics

	// rng drives the full-jitter refill backoff. Guarded by rngMu: refill
	// workers and delayed re-kicks draw concurrently.
	rngMu sync.Mutex
	rng   *rand.Rand

	// outstanding counts enclaves checked out and not yet returned. Refill
	// tops up to target counting these, so a checked-out enclave's slot is
	// held for its scrubbed return — clones only replace true losses
	// (discards, failures), not enclaves that are coming back.
	outstanding atomic.Int64

	warm      atomic.Uint64 // checkouts served from the pool
	cold      atomic.Uint64 // checkouts that timed out (cold fallback)
	clones    atomic.Uint64 // successful background clones
	cloneErrs atomic.Uint64 // failed clone attempts
	scrubs    atomic.Uint64 // enclaves recycled back into the pool
	discards  atomic.Uint64 // returned enclaves destroyed instead of recycled
	lost      atomic.Uint64 // enclaves found lost (EPC reclaimed) at checkout/return
}

// newEnclavePool builds the pool (including the one-time snapshot template)
// but does not start the refill workers — the gateway starts them after the
// metrics registry exists, so the wait histogram is never nil mid-flight.
func newEnclavePool(g *Gateway) (*enclavePool, error) {
	cfg := &g.cfg
	snap, err := cfg.Provider.NewEnclaveSnapshot(engarde.EnclaveConfig{
		Policies:      cfg.Policies,
		HeapPages:     cfg.HeapPages,
		ClientPages:   cfg.ClientPages,
		DisasmWorkers: cfg.DisasmWorkers,
		PolicyWorkers: cfg.PolicyWorkers,
		FnCache:       g.fnCache,
	})
	if err != nil {
		return nil, err
	}
	wait := cfg.PoolCheckoutWait
	if wait == 0 {
		wait = DefaultPoolCheckoutWait
	}
	if wait < 0 {
		wait = 0
	}
	return &enclavePool{
		snap:   snap,
		hooks:  cfg.PoolHooks,
		log:    g.log,
		target: cfg.EnclavePool,
		wait:   wait,
		slots:  make(chan *engarde.Enclave, cfg.EnclavePool),
		kick:   make(chan struct{}, 1),
		stop:   make(chan struct{}),
		rng:    rand.New(rand.NewSource(time.Now().UnixNano())),
	}, nil
}

// start launches the refill workers and requests the initial fill.
func (p *enclavePool) start(workers int) {
	if workers <= 0 {
		workers = DefaultPoolRefillWorkers
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.refillLoop()
	}
	p.kickRefill()
}

// kickRefill nudges the refill workers without blocking; a full kick
// channel means a nudge is already pending, which is all that's needed.
func (p *enclavePool) kickRefill() {
	select {
	case p.kick <- struct{}{}:
	default:
	}
}

func (p *enclavePool) refillLoop() {
	defer p.wg.Done()
	for {
		select {
		case <-p.stop:
			return
		case <-p.kick:
			p.topUp()
		}
	}
}

// population is the pool's enclave count: checked in plus checked out
// (the latter return after scrubbing, so their slots are spoken for).
func (p *enclavePool) population() int {
	return len(p.slots) + int(p.outstanding.Load())
}

// Refill backoff bounds: the jitter ceiling starts at refillBackoffBase
// and doubles per consecutive failure up to refillBackoffMax.
const (
	refillBackoffBase = 2 * time.Millisecond
	refillBackoffMax  = 200 * time.Millisecond
)

// refillBackoff returns a fully-jittered delay for the n-th consecutive
// clone failure: uniform in [0, min(max, base·2^(n-1))]. Clone failures
// usually mean EPC pressure from in-flight sessions; with multiple refill
// workers (and, fleet-wide, multiple gateways on one host) a fixed delay
// re-synchronizes every retrier onto the same contended moment — jitter
// spreads them out.
func (p *enclavePool) refillBackoff(consecutive int) time.Duration {
	if consecutive < 1 {
		consecutive = 1
	}
	ceiling := refillBackoffBase << (consecutive - 1)
	if ceiling > refillBackoffMax || ceiling <= 0 {
		ceiling = refillBackoffMax
	}
	p.rngMu.Lock()
	defer p.rngMu.Unlock()
	return time.Duration(p.rng.Int63n(int64(ceiling) + 1))
}

// topUp clones until the pool's population reaches target or cloning
// keeps failing. Failures back off and eventually yield, but always
// schedule a delayed re-kick so the pool self-heals to target depth even
// with no traffic to nudge it.
func (p *enclavePool) topUp() {
	consecutive := 0
	for p.population() < p.target {
		select {
		case <-p.stop:
			return
		default:
		}
		e, err := p.cloneOne()
		if err != nil {
			p.cloneErrs.Add(1)
			consecutive++
			p.log.Warn("gateway: pool clone failed", "err", err, "consecutive", consecutive)
			if consecutive >= 5 {
				// Yield; try again shortly rather than spinning on a
				// persistent failure (e.g. EPC exhausted by in-flight
				// sessions — their teardown frees pages).
				time.AfterFunc(p.refillBackoff(consecutive), p.kickRefill)
				return
			}
			select {
			case <-p.stop:
				return
			case <-time.After(p.refillBackoff(consecutive)):
			}
			continue
		}
		consecutive = 0
		select {
		case p.slots <- e:
		default:
			// Raced past target (another worker filled the pool).
			e.Destroy()
			return
		}
	}
}

// cloneOne mints one enclave, applying the chaos hooks.
func (p *enclavePool) cloneOne() (*engarde.Enclave, error) {
	if p.hooks != nil && p.hooks.BeforeClone != nil {
		if err := p.hooks.BeforeClone(); err != nil {
			return nil, err
		}
	}
	e, err := p.snap.Clone()
	if err != nil {
		return nil, err
	}
	if p.hooks != nil && p.hooks.AfterClone != nil {
		if err := p.hooks.AfterClone(e); err != nil {
			e.Destroy()
			return nil, err
		}
	}
	p.clones.Add(1)
	return e, nil
}

// discard destroys a checked-out enclave instead of returning it, keeping
// the outstanding/discard accounting exact and nudging refill to clone a
// replacement for the real loss.
func (p *enclavePool) discard(e *engarde.Enclave) {
	e.Destroy()
	p.discards.Add(1)
	p.outstanding.Add(-1)
	p.kickRefill()
}

// tryTake is checkout's non-blocking fast path: pop slots until one yields
// a healthy enclave. A pooled enclave can be *lost* while idle — the host
// reclaimed its EPC pages out from under it — and handing a corpse to a
// session would waste the whole transfer before the first write fails, so
// lost enclaves are detected here, discarded, and the next slot is tried.
func (p *enclavePool) tryTake() (*engarde.Enclave, bool) {
	for {
		select {
		case e := <-p.slots:
			p.outstanding.Add(1)
			if e.Lost() {
				p.lost.Add(1)
				p.discard(e)
				continue
			}
			return e, true
		default:
			return nil, false
		}
	}
}

// checkout returns a warm enclave, or (nil, false) after the bounded wait
// so the caller can fall back to the cold path. The wait is bounded (and
// short) because admission control — not the pool — is where backpressure
// belongs: a drained pool must degrade to cold provisioning, not stall the
// worker.
func (p *enclavePool) checkout() (*engarde.Enclave, bool) {
	start := time.Now()
	observe := func() {
		if p.waitHist != nil {
			p.waitHist.Observe(uint64(time.Since(start) / time.Microsecond))
		}
	}
	if e, ok := p.tryTake(); ok {
		observe()
		p.warm.Add(1)
		return e, true
	}
	p.kickRefill()
	if p.wait > 0 {
		timer := time.NewTimer(p.wait)
		defer timer.Stop()
		for {
			select {
			case e := <-p.slots:
				p.outstanding.Add(1)
				if e.Lost() {
					p.lost.Add(1)
					p.discard(e)
					continue // a replacement may already be in flight
				}
				observe()
				p.warm.Add(1)
				return e, true
			case <-timer.C:
			case <-p.stop:
			}
			break
		}
	}
	observe()
	p.cold.Add(1)
	return nil, false
}

// release returns a used enclave. The scrub re-keys the instance (fresh
// RSA keypair, ~a full keygen), so it runs on its own goroutine rather
// than the session worker's; the goroutine is tracked so close() waits
// for it and slot accounting stays exact.
func (p *enclavePool) release(e *engarde.Enclave) {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		// The enclave stops being "coming back" only once it's either in a
		// slot or destroyed. Decrementing outstanding after the outcome —
		// and, on discard paths, before the refill kick — keeps refill from
		// cloning a replacement for an enclave whose scrubbed return is
		// moments away, while guaranteeing the kick that replaces a real
		// loss sees the loss.
		select {
		case <-p.stop:
			e.Destroy()
			p.discards.Add(1)
			p.outstanding.Add(-1)
			return
		default:
		}
		if e.Lost() {
			// The session's enclave was reclaimed under it; there is
			// nothing left to scrub. Destroy frees the (empty) handle and
			// refill clones a replacement.
			p.lost.Add(1)
			p.discard(e)
			return
		}
		if p.hooks != nil && p.hooks.BeforeScrub != nil {
			if err := p.hooks.BeforeScrub(); err != nil {
				e.Destroy()
				p.discards.Add(1)
				p.outstanding.Add(-1)
				p.kickRefill()
				return
			}
		}
		fresh, err := p.snap.Recycle(e)
		if err != nil {
			// Recycle destroyed the enclave on failure.
			p.discards.Add(1)
			p.outstanding.Add(-1)
			p.log.Warn("gateway: pool scrub failed", "err", err)
			p.kickRefill()
			return
		}
		select {
		case p.slots <- fresh:
			p.scrubs.Add(1)
			p.outstanding.Add(-1)
		default:
			fresh.Destroy()
			p.discards.Add(1)
			p.outstanding.Add(-1)
		}
	}()
}

// close stops refilling, waits for in-flight clone/scrub goroutines, and
// destroys every pooled enclave so the EPC slot balance returns to what it
// was before the pool existed.
func (p *enclavePool) close() {
	p.stopOnce.Do(func() { close(p.stop) })
	p.wg.Wait()
	for {
		select {
		case e := <-p.slots:
			e.Destroy()
		default:
			return
		}
	}
}
