package gateway

import (
	"container/list"
	"crypto/sha256"
	"sync"

	"engarde"
)

// cacheKey addresses a verdict by content and policy identity: the SHA-256
// of the decrypted image and the canonical fingerprint of the policy set
// it was checked under. Two equal keys denote the same deterministic check
// over the same inputs, so the verdict (and the load-time facts in the
// Report) carry over exactly.
type cacheKey struct {
	image  [sha256.Size]byte
	policy [sha256.Size]byte
}

// verdictCache is a bounded LRU of provisioning reports.
type verdictCache struct {
	mu        sync.Mutex
	max       int
	entries   map[cacheKey]*list.Element
	order     *list.List // front = most recently used
	evictions uint64     // verdicts dropped at capacity
}

type cacheEntry struct {
	key cacheKey
	rep engarde.Report
}

func newVerdictCache(max int) *verdictCache {
	return &verdictCache{
		max:     max,
		entries: make(map[cacheKey]*list.Element, max),
		order:   list.New(),
	}
}

// get returns the cached report for key, marking it most recently used.
// The returned report is shared — callers must not mutate it.
func (c *verdictCache) get(key cacheKey) (*engarde.Report, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return &el.Value.(*cacheEntry).rep, true
}

// put remembers a report, evicting the least recently used entry at
// capacity. The stored copy drops Phases — cycle snapshots are
// session-specific, not part of the verdict.
func (c *verdictCache) put(key cacheKey, rep *engarde.Report) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		return
	}
	cp := *rep
	cp.Phases = nil
	cp.CacheHit = false
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, rep: cp})
	for c.order.Len() > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// len returns the number of cached verdicts.
func (c *verdictCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// evicted returns how many verdicts capacity pressure has dropped.
func (c *verdictCache) evicted() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictions
}
