package gateway_test

// Enclave-loss recovery: a session whose enclave has its EPC pages
// reclaimed mid-provision must complete with exactly the verdict a
// fault-free session gets (on a replacement enclave), and lost enclaves
// sitting in the warm pool must be drained at checkout instead of being
// handed to sessions. Losing an enclave may cost latency, never verdict
// integrity.

import (
	"sync/atomic"
	"testing"

	"engarde"
	"engarde/internal/gateway"
)

// TestEnclaveLossMidProvisionFailover drives sessions through a gateway
// whose LoseEnclaveEvery drill reclaims every session's enclave right
// before the pipeline runs: each session must still complete, and its
// verdict (compliant and non-compliant alike) must match the fault-free
// control.
func TestEnclaveLossMidProvisionFailover(t *testing.T) {
	good := buildImage(t, "loss-good", 601, true)
	bad := buildImage(t, "loss-bad", 602, false)

	// Fault-free control verdicts.
	policies := engarde.NewPolicySet(engarde.StackProtectorPolicy())
	ctlGw, ctlLn, ctlClient := testGateway(t, gateway.Config{MaxConcurrent: 2, Policies: policies})
	_ = ctlGw
	ctlGood, err := provisionOnce(t, ctlLn, ctlClient, good)
	if err != nil {
		t.Fatal(err)
	}
	ctlBad, err := provisionOnce(t, ctlLn, ctlClient, bad)
	if err != nil {
		t.Fatal(err)
	}
	if !ctlGood.Compliant || ctlBad.Compliant {
		t.Fatalf("unexpected control verdicts: good=%+v bad=%+v", ctlGood, ctlBad)
	}

	for _, tc := range []struct {
		name string
		cfg  gateway.Config
	}{
		{"cold", gateway.Config{MaxConcurrent: 2, Policies: policies, LoseEnclaveEvery: 1, CacheEntries: -1}},
		{"pooled", gateway.Config{MaxConcurrent: 2, Policies: policies, LoseEnclaveEvery: 1, CacheEntries: -1, EnclavePool: 2}},
		{"sequential", gateway.Config{MaxConcurrent: 2, Policies: policies, LoseEnclaveEvery: 1, CacheEntries: -1, DisableStreaming: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			gw, ln, client := testGateway(t, tc.cfg)
			vGood, err := provisionOnce(t, ln, client, good)
			if err != nil {
				t.Fatalf("provision with enclave loss: %v", err)
			}
			vBad, err := provisionOnce(t, ln, client, bad)
			if err != nil {
				t.Fatalf("provision with enclave loss: %v", err)
			}
			if vGood != ctlGood {
				t.Errorf("compliant verdict diverged under enclave loss: got %+v want %+v", vGood, ctlGood)
			}
			if vBad != ctlBad {
				t.Errorf("non-compliant verdict diverged under enclave loss: got %+v want %+v", vBad, ctlBad)
			}
			waitFor(t, "sessions accounted", func() bool { return gw.Stats().Served == 2 })
			s := gw.Stats()
			if s.EnclavesLost != 2 {
				t.Errorf("EnclavesLost = %d, want 2", s.EnclavesLost)
			}
			if s.EnclaveFailovers != 2 {
				t.Errorf("EnclaveFailovers = %d, want 2", s.EnclaveFailovers)
			}
			if s.Errors != 0 {
				t.Errorf("Errors = %d, want 0 — a recovered loss must not count as a failure", s.Errors)
			}
		})
	}
}

// TestEnclaveLossVerdictCacheNotPoisoned runs the drill with the verdict
// cache enabled: the first (recovered) session populates the cache, and a
// follow-up fault-free session must hit it with the same verdict — a
// recovery must never leave a wrong or partial entry behind.
func TestEnclaveLossVerdictCacheNotPoisoned(t *testing.T) {
	image := buildImage(t, "loss-cache", 603, true)
	gw, ln, client := testGateway(t, gateway.Config{MaxConcurrent: 2, LoseEnclaveEvery: 2})

	// The drill fires when the session ordinal is a multiple of N, so with
	// N=2 sessions 2, 4, ... lose their enclave. Session 1 is clean and
	// caches the verdict; session 2 loses its enclave and replays the
	// cached-verdict path on the replacement; session 3 is clean again.
	v1, err := provisionOnce(t, ln, client, image)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := provisionOnce(t, ln, client, image)
	if err != nil {
		t.Fatal(err)
	}
	v3, err := provisionOnce(t, ln, client, image)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range []engarde.Verdict{v1, v2, v3} {
		if v != v1 {
			t.Errorf("session %d verdict diverged: got %+v want %+v", i+1, v, v1)
		}
	}
	if !v1.Compliant {
		t.Fatalf("verdict = %+v, want compliant", v1)
	}
	waitFor(t, "sessions accounted", func() bool { return gw.Stats().Served == 3 })
	// Session 1 misses and populates; session 2 hits twice (once on the
	// doomed enclave, once on the replacement); session 3 hits once.
	if s := gw.Stats(); s.CacheMisses != 1 || s.CacheHits != 3 {
		t.Errorf("cache lookups = %d hits / %d misses, want 3/1", s.CacheHits, s.CacheMisses)
	}
}

// TestPoolDrainsLostEnclaves poisons the first clones entering the pool
// (their EPC pages reclaimed while they sit idle) and verifies checkout
// discards them instead of handing a corpse to a session: the session
// completes with the correct verdict and the losses are accounted.
func TestPoolDrainsLostEnclaves(t *testing.T) {
	image := buildImage(t, "loss-pool", 604, true)
	var poisoned atomic.Int32
	gw, ln, client := testGateway(t, gateway.Config{
		MaxConcurrent: 2,
		EnclavePool:   2,
		PoolHooks: &gateway.PoolHooks{
			AfterClone: func(e *engarde.Enclave) error {
				// Reclaim the first two clones after they were minted —
				// they enter the pool already lost.
				if poisoned.Add(1) <= 2 {
					e.Reclaim()
				}
				return nil
			},
		},
	})
	waitFor(t, "pool filled with poisoned clones", func() bool {
		return gw.Stats().Pool.Depth == 2
	})

	v, err := provisionOnce(t, ln, client, image)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Compliant {
		t.Errorf("verdict = %+v, want compliant", v)
	}
	waitFor(t, "lost enclaves drained", func() bool { return gw.Stats().Pool.Lost >= 2 })
	s := gw.Stats()
	if s.EnclavesLost != 0 {
		t.Errorf("EnclavesLost = %d, want 0 — pool-detected losses must never reach a session", s.EnclavesLost)
	}
	if s.Errors != 0 {
		t.Errorf("Errors = %d, want 0", s.Errors)
	}
	// The pool self-heals back to target with healthy clones.
	waitFor(t, "pool healed", func() bool { return gw.Stats().Pool.Depth == 2 })
}
