package gateway

import (
	"math/rand"
	"testing"
	"time"
)

// TestRefillBackoffJitter pins the full-jitter contract: every draw falls
// in [0, min(refillBackoffMax, base·2^(n-1))], the ceiling doubles with
// consecutive failures, and draws actually spread (a fixed delay would
// re-synchronize every refill worker onto the same contended instant).
func TestRefillBackoffJitter(t *testing.T) {
	p := &enclavePool{rng: rand.New(rand.NewSource(1))}
	for _, tc := range []struct {
		consecutive int
		ceiling     time.Duration
	}{
		{0, refillBackoffBase}, // clamped to 1
		{1, refillBackoffBase},
		{2, 2 * refillBackoffBase},
		{5, 16 * refillBackoffBase},
		{8, refillBackoffMax}, // 2ms<<7 = 256ms, capped at 200ms
		{63, refillBackoffMax},
		{400, refillBackoffMax}, // shift overflow must not go negative
	} {
		seen := make(map[time.Duration]struct{})
		for i := 0; i < 256; i++ {
			d := p.refillBackoff(tc.consecutive)
			if d < 0 || d > tc.ceiling {
				t.Fatalf("refillBackoff(%d) = %v, want in [0, %v]", tc.consecutive, d, tc.ceiling)
			}
			seen[d] = struct{}{}
		}
		if len(seen) < 2 {
			t.Errorf("refillBackoff(%d) never varied across 256 draws — jitter is missing", tc.consecutive)
		}
	}
}
