package symtab

import (
	"errors"
	"sort"
	"testing"
	"testing/quick"

	"engarde/internal/elf64"
)

func table(entries ...Entry) *Table {
	t := New()
	for _, e := range entries {
		t.Add(e)
	}
	return t
}

func TestLookups(t *testing.T) {
	tab := table(
		Entry{Name: "memcpy", Addr: 0x1000, Size: 64},
		Entry{Name: "strlen", Addr: 0x1100, Size: 32},
		Entry{Name: "main", Addr: 0x2000, Size: 256},
	)
	if n, ok := tab.NameAt(0x1100); !ok || n != "strlen" {
		t.Errorf("NameAt(0x1100) = %q, %v", n, ok)
	}
	if _, ok := tab.NameAt(0x1101); ok {
		t.Error("NameAt inside a body must miss")
	}
	if a, ok := tab.AddrOf("main"); !ok || a != 0x2000 {
		t.Errorf("AddrOf(main) = %#x", a)
	}
	if !tab.IsFuncStart(0x1000) || tab.IsFuncStart(0x1001) {
		t.Error("IsFuncStart misbehaves")
	}
}

func TestNextFuncAfter(t *testing.T) {
	tab := table(
		Entry{Name: "a", Addr: 0x100},
		Entry{Name: "b", Addr: 0x200},
		Entry{Name: "c", Addr: 0x300},
	)
	if next, ok := tab.NextFuncAfter(0x100); !ok || next != 0x200 {
		t.Errorf("NextFuncAfter(0x100) = %#x, %v", next, ok)
	}
	if next, ok := tab.NextFuncAfter(0x250); !ok || next != 0x300 {
		t.Errorf("NextFuncAfter(0x250) = %#x, %v", next, ok)
	}
	if _, ok := tab.NextFuncAfter(0x300); ok {
		t.Error("NextFuncAfter past the last function should miss")
	}
}

func TestFuncContaining(t *testing.T) {
	tab := table(
		Entry{Name: "a", Addr: 0x100, Size: 0x80},
		Entry{Name: "b", Addr: 0x200, Size: 0x80},
	)
	if e, ok := tab.FuncContaining(0x17f); !ok || e.Name != "a" {
		t.Errorf("FuncContaining(0x17f) = %+v", e)
	}
	if e, ok := tab.FuncContaining(0x200); !ok || e.Name != "b" {
		t.Errorf("FuncContaining(0x200) = %+v", e)
	}
	if _, ok := tab.FuncContaining(0x50); ok {
		t.Error("address before first function should miss")
	}
}

func TestAddReplaces(t *testing.T) {
	tab := table(Entry{Name: "f", Addr: 0x100, Size: 1})
	tab.Add(Entry{Name: "f2", Addr: 0x100, Size: 2})
	if tab.Len() != 1 {
		t.Errorf("Len = %d after replacing, want 1", tab.Len())
	}
	if n, _ := tab.NameAt(0x100); n != "f2" {
		t.Errorf("NameAt = %q", n)
	}
}

func TestFromELF(t *testing.T) {
	var b elf64.Builder
	b.Entry = 0x1000
	b.AddSection(elf64.BuildSection{Name: ".text", Type: elf64.SHTProgbits,
		Flags: elf64.SHFAlloc | elf64.SHFExecinstr, Addr: 0x1000, Data: make([]byte, 64)})
	b.AddSymbol(elf64.BuildSymbol{Name: "fn1", Value: 0x1000, Size: 32,
		Info: elf64.STBGlobal<<4 | elf64.STTFunc, Section: ".text"})
	b.AddSymbol(elf64.BuildSymbol{Name: "data_obj", Value: 0x1040, Size: 8,
		Info: elf64.STBGlobal<<4 | elf64.STTObject, Section: ".text"})
	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	f, err := elf64.Parse(img)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := FromELF(f)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 1 {
		t.Errorf("Len = %d, want 1 (objects filtered)", tab.Len())
	}
	if _, ok := tab.AddrOf("data_obj"); ok {
		t.Error("non-function symbol should be filtered")
	}
}

func TestFromELFNoFunctions(t *testing.T) {
	var b elf64.Builder
	b.Entry = 0x1000
	b.AddSection(elf64.BuildSection{Name: ".text", Type: elf64.SHTProgbits,
		Flags: elf64.SHFAlloc | elf64.SHFExecinstr, Addr: 0x1000, Data: make([]byte, 16)})
	b.AddSymbol(elf64.BuildSymbol{Name: "obj", Value: 0x1000, Size: 8,
		Info: elf64.STBGlobal<<4 | elf64.STTObject, Section: ".text"})
	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	f, err := elf64.Parse(img)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromELF(f); !errors.Is(err, ErrEmpty) {
		t.Errorf("FromELF = %v, want ErrEmpty", err)
	}
}

// TestQuickSortedInvariant: after arbitrary insertions, Functions() is
// sorted and NextFuncAfter agrees with a linear scan.
func TestQuickSortedInvariant(t *testing.T) {
	f := func(addrs []uint32) bool {
		tab := New()
		for i, a := range addrs {
			tab.Add(Entry{Name: string(rune('a' + i%26)), Addr: uint64(a)})
		}
		fns := tab.Functions()
		if !sort.SliceIsSorted(fns, func(i, j int) bool { return fns[i].Addr < fns[j].Addr }) {
			t.Error("Functions() not sorted")
			return false
		}
		if len(addrs) == 0 {
			return true
		}
		probe := uint64(addrs[0])
		want := uint64(0)
		found := false
		for _, e := range fns {
			if e.Addr > probe && (!found || e.Addr < want) {
				want, found = e.Addr, true
			}
		}
		got, ok := tab.NextFuncAfter(probe)
		if ok != found || (found && got != want) {
			t.Errorf("NextFuncAfter(%#x) = %#x,%v want %#x,%v", probe, got, ok, want, found)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
