// Package symtab implements the symbol hash table EnGarde's loader builds
// while disassembling (paper §4): "It constructs a symbol hash table whose
// key is the address of a function and value is the name of the function.
// This symbol hash table could be used by the policy checking component."
//
// Policy modules use it to resolve direct-call targets to function names
// (library-linking check), to find function boundaries (a function's body
// ends where the next function begins), and to identify instrumentation
// helpers such as __stack_chk_fail.
package symtab

import (
	"errors"
	"sort"

	"engarde/internal/elf64"
)

// ErrEmpty is returned when a binary defines no function symbols; EnGarde
// rejects such binaries because its policy modules cannot run (paper §6).
var ErrEmpty = errors.New("symtab: no function symbols")

// Entry is one function symbol.
type Entry struct {
	Name string
	Addr uint64
	Size uint64
}

// Table is the address-keyed symbol hash table.
type Table struct {
	byAddr map[uint64]Entry
	byName map[string]uint64
	sorted []uint64 // function start addresses, ascending
}

// FromELF builds the table from a parsed binary's .symtab, keeping
// function symbols only. Returns ErrEmpty if the binary has no function
// symbols, and elf64.ErrNoSymtab if it is stripped.
func FromELF(f *elf64.File) (*Table, error) {
	syms, err := f.Symbols()
	if err != nil {
		return nil, err
	}
	t := New()
	for _, s := range syms {
		if s.SymType() != elf64.STTFunc || s.SymName == "" {
			continue
		}
		t.Add(Entry{Name: s.SymName, Addr: s.Value, Size: s.Size})
	}
	if t.Len() == 0 {
		return nil, ErrEmpty
	}
	return t, nil
}

// New returns an empty table.
func New() *Table {
	return &Table{
		byAddr: make(map[uint64]Entry),
		byName: make(map[string]uint64),
	}
}

// Add inserts or replaces a function entry.
func (t *Table) Add(e Entry) {
	if _, exists := t.byAddr[e.Addr]; !exists {
		i := sort.Search(len(t.sorted), func(i int) bool { return t.sorted[i] >= e.Addr })
		t.sorted = append(t.sorted, 0)
		copy(t.sorted[i+1:], t.sorted[i:])
		t.sorted[i] = e.Addr
	}
	t.byAddr[e.Addr] = e
	t.byName[e.Name] = e.Addr
}

// Len returns the number of functions.
func (t *Table) Len() int { return len(t.byAddr) }

// NameAt returns the function name starting exactly at addr — the hash
// table lookup the policies perform per direct call.
func (t *Table) NameAt(addr uint64) (string, bool) {
	e, ok := t.byAddr[addr]
	return e.Name, ok
}

// EntryAt returns the full entry starting exactly at addr.
func (t *Table) EntryAt(addr uint64) (Entry, bool) {
	e, ok := t.byAddr[addr]
	return e, ok
}

// AddrOf returns the start address of the named function.
func (t *Table) AddrOf(name string) (uint64, bool) {
	a, ok := t.byName[name]
	return a, ok
}

// IsFuncStart reports whether addr is the beginning of a function — the
// predicate the library-linking policy uses to stop hashing a function
// body (paper §5).
func (t *Table) IsFuncStart(addr uint64) bool {
	_, ok := t.byAddr[addr]
	return ok
}

// NextFuncAfter returns the smallest function start strictly greater than
// addr.
func (t *Table) NextFuncAfter(addr uint64) (uint64, bool) {
	i := sort.Search(len(t.sorted), func(i int) bool { return t.sorted[i] > addr })
	if i == len(t.sorted) {
		return 0, false
	}
	return t.sorted[i], true
}

// FuncContaining returns the entry of the function whose half-open span
// [start, nextStart) contains addr.
func (t *Table) FuncContaining(addr uint64) (Entry, bool) {
	i := sort.Search(len(t.sorted), func(i int) bool { return t.sorted[i] > addr })
	if i == 0 {
		return Entry{}, false
	}
	return t.byAddr[t.sorted[i-1]], true
}

// Functions returns all entries in ascending address order.
func (t *Table) Functions() []Entry {
	out := make([]Entry, 0, len(t.sorted))
	for _, a := range t.sorted {
		out = append(out, t.byAddr[a])
	}
	return out
}
