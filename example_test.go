package engarde_test

import (
	"fmt"
	"log"

	"engarde"
	"engarde/internal/toolchain"
)

// Example shows the complete provider-side flow: boot a platform, agree on
// policies, create an EnGarde enclave, provision a client executable and
// transfer control.
func Example() {
	// The provider boots its (emulated) SGX platform.
	provider, err := engarde.NewProvider(engarde.ProviderConfig{EPCPages: 4096})
	if err != nil {
		log.Fatal(err)
	}

	// Provider and client agreed that all code carries stack protection.
	enclave, err := provider.CreateEnclave(engarde.EnclaveConfig{
		Policies:  engarde.NewPolicySet(engarde.StackProtectorPolicy()),
		HeapPages: 1500, ClientPages: 512,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The client built its application accordingly (the synthetic
	// toolchain stands in for clang -fstack-protector-all).
	bin, err := toolchain.Build(toolchain.Config{
		Name: "app", Seed: 42, NumFuncs: 6, AvgFuncInsts: 40,
		StackProtector: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	report, err := enclave.Provision(bin.Image)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("compliant:", report.Compliant)

	if _, err := enclave.Enter(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("running")
	// Output:
	// compliant: true
	// running
}

// Example_rejection shows the provider-visible outcome when a client
// submits non-compliant code: one bit and a reason, nothing else.
func Example_rejection() {
	provider, err := engarde.NewProvider(engarde.ProviderConfig{EPCPages: 4096})
	if err != nil {
		log.Fatal(err)
	}
	enclave, err := provider.CreateEnclave(engarde.EnclaveConfig{
		Policies:  engarde.NewPolicySet(engarde.IFCCPolicy()),
		HeapPages: 1500, ClientPages: 512,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Indirect calls without IFCC guards.
	bin, err := toolchain.Build(toolchain.Config{
		Name: "bad", Seed: 43, NumFuncs: 6, AvgFuncInsts: 40,
		IndirectRate: 0.05,
	})
	if err != nil {
		log.Fatal(err)
	}
	report, err := enclave.Provision(bin.Image)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("compliant:", report.Compliant)
	// Output:
	// compliant: false
}
