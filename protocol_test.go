package engarde

import (
	"bytes"
	"crypto/rsa"
	"encoding/json"
	"errors"
	"math/rand"
	"net"
	"testing"
	"testing/quick"

	"engarde/internal/interp"
	"engarde/internal/secchan"
	"engarde/internal/toolchain"
)

func TestServeProvisionGarbageHello(t *testing.T) {
	// A client that speaks garbage instead of the wrapped key must not
	// crash the server; the enclave reports an error and stays
	// unprovisioned.
	provider, err := NewProvider(ProviderConfig{EPCPages: 4096})
	if err != nil {
		t.Fatal(err)
	}
	encl, err := provider.CreateEnclave(smallEnclave())
	if err != nil {
		t.Fatal(err)
	}
	cli, srv := net.Pipe()
	defer cli.Close()
	done := make(chan error, 1)
	go func() {
		defer srv.Close()
		_, err := encl.ServeProvision(srv)
		done <- err
	}()
	// Drain the hello...
	if _, err := secchan.ReadBlock(cli); err != nil {
		t.Fatal(err)
	}
	// ...then send a garbage "wrapped key".
	if err := secchan.WriteBlock(cli, bytes.Repeat([]byte{0x41}, 256)); err != nil {
		t.Fatal(err)
	}
	// net.Pipe is synchronous: drain the server's failure verdict so its
	// write can complete.
	if _, err := secchan.ReadBlock(cli); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err == nil {
		t.Error("server should report the bad session key")
	}
	if _, err := encl.Enter(); err == nil {
		t.Error("enclave must not be provisioned after a failed handshake")
	}
}

func TestClientRejectsMalformedQuoteEncoding(t *testing.T) {
	// A server sending a structurally invalid quote is rejected client-
	// side before any key material is generated.
	cli, srv := net.Pipe()
	defer cli.Close()
	go func() {
		defer srv.Close()
		_ = sendJSON(srv, hello{Quote: quoteWire{MREnclave: []byte{1, 2, 3}}, PublicKey: []byte{4}})
	}()
	c := &Client{}
	if _, err := c.Provision(cli, []byte("img")); err == nil {
		t.Error("malformed quote must be rejected")
	}
}

func TestTamperedStreamFailsAuthentication(t *testing.T) {
	// Flipping one ciphertext bit on the wire kills the transfer.
	provider, err := NewProvider(ProviderConfig{EPCPages: 4096})
	if err != nil {
		t.Fatal(err)
	}
	encl, err := provider.CreateEnclave(smallEnclave())
	if err != nil {
		t.Fatal(err)
	}
	pub, err := encl.PublicKeyDER()
	if err != nil {
		t.Fatal(err)
	}
	sess, wrapped, err := secchan.WrapSessionKey(pub, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := encl.AcceptSessionKey(wrapped); err != nil {
		t.Fatal(err)
	}
	var wire bytes.Buffer
	if err := sess.SendStream(&wire, []byte("payload payload payload"), 8); err != nil {
		t.Fatal(err)
	}
	raw := wire.Bytes()
	raw[len(raw)-2] ^= 0x80 // corrupt the last ciphertext block
	if _, err := encl.Core().ProvisionStream(bytes.NewReader(raw)); err == nil {
		t.Error("tampered stream must fail")
	}
}

// TestQuickProvisionAndExecute: for arbitrary seeds, the whole chain —
// generate, provision under the matching policy, run in the enclave —
// succeeds without faults. This is the system-level invariant of the
// reproduction: everything the toolchain emits is inspectable and
// runnable.
func TestQuickProvisionAndExecute(t *testing.T) {
	if testing.Short() {
		t.Skip("slow property test")
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cfg := toolchain.Config{
			Name: "prop", Seed: seed,
			NumFuncs:       3 + r.Intn(8),
			AvgFuncInsts:   20 + r.Intn(80),
			LibcCallRate:   0.03 + 0.05*r.Float64(),
			AppCallRate:    0.02,
			IndirectRate:   0.02 * r.Float64(),
			StackProtector: r.Intn(2) == 0,
			IFCC:           r.Intn(2) == 0,
		}
		bin, err := toolchain.Build(cfg)
		if err != nil {
			t.Errorf("seed %d: build: %v", seed, err)
			return false
		}
		pols := NewPolicySet(NoForbiddenInstructionsPolicy())
		if cfg.StackProtector {
			pols.Add(StackProtectorPolicy())
		}
		if cfg.IFCC {
			pols.Add(IFCCPolicy())
		}
		provider, err := NewProvider(ProviderConfig{EPCPages: 4096})
		if err != nil {
			t.Errorf("seed %d: provider: %v", seed, err)
			return false
		}
		ec := smallEnclave()
		ec.Policies = pols
		encl, err := provider.CreateEnclave(ec)
		if err != nil {
			t.Errorf("seed %d: enclave: %v", seed, err)
			return false
		}
		rep, err := encl.Provision(bin.Image)
		if err != nil {
			t.Errorf("seed %d: provision: %v", seed, err)
			return false
		}
		if !rep.Compliant {
			t.Errorf("seed %d: rejected: %s", seed, rep.Reason)
			return false
		}
		res, err := encl.Core().Execute(100_000)
		if err != nil {
			t.Errorf("seed %d: execute: %v", seed, err)
			return false
		}
		if res.Reason != interp.StopTrap && res.Reason != interp.StopMaxSteps {
			t.Errorf("seed %d: stop = %v", seed, res.Reason)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

func TestParsePolicies(t *testing.T) {
	set, err := ParsePolicies("musl, stack-protector,ifcc,no-forbidden")
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 4 {
		t.Errorf("Len = %d, want 4", set.Len())
	}
	if _, err := ParsePolicies("bogus"); err == nil {
		t.Error("unknown policy must error")
	}
	empty, err := ParsePolicies(" ")
	if err != nil || empty.Len() != 0 {
		t.Errorf("empty list: %v, len %d", err, empty.Len())
	}
}

func TestVerdictReasonCodes(t *testing.T) {
	// A policy rejection reaches the client with a typed CodePolicy; a bad
	// session key arrives as CodeSessionKey. Structural rejections (not a
	// valid ELF) are CodeRejected.
	provider, err := NewProvider(ProviderConfig{EPCPages: 4096})
	if err != nil {
		t.Fatal(err)
	}
	expected, err := ExpectedMeasurement(SGXv2, smallEnclave())
	if err != nil {
		t.Fatal(err)
	}
	newEnclave := func(pols *PolicySet) *Enclave {
		cfg := smallEnclave()
		cfg.Policies = pols
		encl, err := provider.CreateEnclave(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return encl
	}
	client := &Client{Expected: expected, PlatformKey: provider.AttestationPublicKey()}
	bin, err := toolchain.Build(toolchain.Config{
		Name: "rc", Seed: 73, NumFuncs: 6, AvgFuncInsts: 40, // no stack protector
	})
	if err != nil {
		t.Fatal(err)
	}

	provisionVerdict := func(encl *Enclave, image []byte) Verdict {
		t.Helper()
		defer encl.Destroy() // return the EPC pages to the shared device
		cli, srv := net.Pipe()
		defer cli.Close()
		go func() {
			defer srv.Close()
			_, _ = encl.ServeProvision(srv)
		}()
		v, err := client.Provision(cli, image)
		if err != nil {
			t.Fatalf("client.Provision: %v", err)
		}
		return v
	}

	if v := provisionVerdict(newEnclave(NewPolicySet(StackProtectorPolicy())), bin.Image); v.Compliant || v.Code != CodePolicy {
		t.Errorf("policy rejection: compliant=%v code=%q, want code %q", v.Compliant, v.Code, CodePolicy)
	}
	if v := provisionVerdict(newEnclave(NewPolicySet()), []byte("not an ELF at all")); v.Compliant || v.Code != CodeRejected {
		t.Errorf("structural rejection: compliant=%v code=%q, want code %q", v.Compliant, v.Code, CodeRejected)
	}
	if v := provisionVerdict(newEnclave(NewPolicySet()), bin.Image); !v.Compliant || v.Code != CodeOK {
		t.Errorf("compliant: compliant=%v code=%q, want code %q", v.Compliant, v.Code, CodeOK)
	}

	// Session-key rejection: drive the wire by hand with a garbage key.
	encl := newEnclave(NewPolicySet())
	cli, srv := net.Pipe()
	defer cli.Close()
	done := make(chan error, 1)
	go func() {
		defer srv.Close()
		_, err := encl.ServeProvision(srv)
		done <- err
	}()
	if _, err := secchan.ReadBlock(cli); err != nil { // drain hello
		t.Fatal(err)
	}
	if err := secchan.WriteBlock(cli, bytes.Repeat([]byte{0x41}, 256)); err != nil {
		t.Fatal(err)
	}
	var v Verdict
	if err := recvJSON(cli, &v); err != nil {
		t.Fatal(err)
	}
	if v.Compliant || v.Code != CodeSessionKey {
		t.Errorf("session-key rejection: compliant=%v code=%q, want code %q", v.Compliant, v.Code, CodeSessionKey)
	}
	if err := <-done; err == nil {
		t.Error("server must surface the session-key failure")
	}
}

func TestRoutePreambleDiscardedByDirectServer(t *testing.T) {
	// A client announcing routing metadata straight at a gatewayd (no
	// router in front to strip the preamble) must still provision: the
	// server discards the RouteHello frame and reads the real session key.
	provider, err := NewProvider(ProviderConfig{EPCPages: 4096})
	if err != nil {
		t.Fatal(err)
	}
	expected, err := ExpectedMeasurement(SGXv2, smallEnclave())
	if err != nil {
		t.Fatal(err)
	}
	encl, err := provider.CreateEnclave(smallEnclave())
	if err != nil {
		t.Fatal(err)
	}
	bin, err := toolchain.Build(toolchain.Config{Name: "route", Seed: 11, NumFuncs: 5, AvgFuncInsts: 30})
	if err != nil {
		t.Fatal(err)
	}
	client := &Client{
		Expected: expected,
		// Multi-key fleet config: a wrong key first, the real one in
		// PlatformKeys — the client must try all of them.
		PlatformKey:  nil,
		PlatformKeys: []*rsa.PublicKey{provider.AttestationPublicKey()},
		Route:        &RouteHello{Tenant: "t1", DeadlineMillis: 5000},
	}
	// Real TCP, not net.Pipe: the preamble is written while the server is
	// writing its hello, which only a buffered transport permits — exactly
	// the full-duplex property the preamble design relies on.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		srv, err := l.Accept()
		if err != nil {
			return
		}
		defer srv.Close()
		_, _ = encl.ServeProvision(srv)
	}()
	cli, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	v, err := client.Provision(cli, bin.Image)
	if err != nil {
		t.Fatalf("Provision with route preamble: %v", err)
	}
	if !v.Compliant {
		t.Fatalf("verdict = %+v, want compliant", v)
	}
}

func TestParseRouteHello(t *testing.T) {
	rh := RouteHello{Proto: RouteProto, ImageDigest: "abc123", Tenant: "t", DeadlineMillis: 9}
	frame, err := json.Marshal(rh)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := ParseRouteHello(frame)
	if !ok || got != rh {
		t.Fatalf("ParseRouteHello = %+v, %v; want %+v", got, ok, rh)
	}
	for _, bad := range [][]byte{
		nil,
		[]byte("garbage"),
		[]byte(`{"proto":"something-else"}`),
		[]byte(`{"image_digest":"abc"}`),
		bytes.Repeat([]byte{'{'}, maxRouteHello+1),
	} {
		if _, ok := ParseRouteHello(bad); ok {
			t.Errorf("ParseRouteHello(%.20q...) accepted, want rejected", bad)
		}
	}
}

func TestClientVerifyAnyRejectsWrongKeys(t *testing.T) {
	provider, err := NewProvider(ProviderConfig{EPCPages: 4096})
	if err != nil {
		t.Fatal(err)
	}
	other, err := NewProvider(ProviderConfig{EPCPages: 4096})
	if err != nil {
		t.Fatal(err)
	}
	expected, err := ExpectedMeasurement(SGXv2, smallEnclave())
	if err != nil {
		t.Fatal(err)
	}
	encl, err := provider.CreateEnclave(smallEnclave())
	if err != nil {
		t.Fatal(err)
	}
	client := &Client{Expected: expected, PlatformKeys: []*rsa.PublicKey{other.AttestationPublicKey()}}
	cli, srv := net.Pipe()
	defer cli.Close()
	go func() {
		defer srv.Close()
		_, _ = encl.ServeProvision(srv)
	}()
	if _, err := client.Provision(cli, []byte("img")); !errors.Is(err, ErrAttestation) {
		t.Fatalf("Provision with only a wrong platform key: err = %v, want ErrAttestation", err)
	}
}
