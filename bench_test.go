package engarde_test

// This file regenerates every table and figure of the paper's evaluation
// (§5) as Go benchmarks:
//
//	BenchmarkFig2ComponentSizes — Figure 2 (component LOC table)
//	BenchmarkFig3/<benchmark>   — Figure 3 (library-linking policy)
//	BenchmarkFig4/<benchmark>   — Figure 4 (stack-protection policy)
//	BenchmarkFig5/<benchmark>   — Figure 5 (IFCC policy)
//
// BenchmarkGatewayThroughput goes beyond the paper: it measures the
// multi-tenant serving layer (internal/gateway) end to end, contrasting
// cold provisioning against verdict-cache hits.
//
// Each Fig3-5 benchmark runs the full EnGarde pipeline (enclave creation,
// staging, disassembly, policy check, load) over the named workload and
// reports the paper's three cycle columns as benchmark metrics, so
// `go test -bench .` prints the whole evaluation. cmd/engarde-bench prints
// the same data formatted like the paper's tables.
//
// The Ablation benchmarks quantify the design decisions called out in
// DESIGN.md §5: instruction-buffer retention mode, malloc batching, and
// the stack-protection scan strategy.

import (
	"fmt"
	"testing"

	"engarde/internal/bench"
	"engarde/internal/core"
	"engarde/internal/cycles"
	"engarde/internal/elf64"
	"engarde/internal/nacl"
	"engarde/internal/policy"
	"engarde/internal/policy/ifcc"
	"engarde/internal/policy/liblink"
	"engarde/internal/policy/noforbidden"
	"engarde/internal/policy/stackprot"
	"engarde/internal/sgx"
	"engarde/internal/symtab"
	"engarde/internal/toolchain"
	"engarde/internal/workload"
	"engarde/internal/x86"
)

func benchmarkFigure(b *testing.B, exp bench.Experiment) {
	for _, spec := range workload.Specs() {
		spec := spec
		b.Run(spec.Name, func(b *testing.B) {
			var row bench.Row
			for i := 0; i < b.N; i++ {
				var err error
				row, err = bench.Run(exp, spec)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(row.NumInsts), "insts")
			b.ReportMetric(float64(row.Disassembly), "disasm-cycles")
			b.ReportMetric(float64(row.PolicyChecking), "policy-cycles")
			b.ReportMetric(float64(row.LoadReloc), "load-cycles")
		})
	}
}

// BenchmarkFig3 regenerates Figure 3: the library-linking policy.
func BenchmarkFig3(b *testing.B) { benchmarkFigure(b, bench.Fig3) }

// BenchmarkFig4 regenerates Figure 4: the stack-protection policy.
func BenchmarkFig4(b *testing.B) { benchmarkFigure(b, bench.Fig4) }

// BenchmarkFig5 regenerates Figure 5: the IFCC policy.
func BenchmarkFig5(b *testing.B) { benchmarkFigure(b, bench.Fig5) }

// BenchmarkFig2ComponentSizes regenerates Figure 2: component sizes.
func BenchmarkFig2ComponentSizes(b *testing.B) {
	var total int
	for i := 0; i < b.N; i++ {
		loc, err := bench.CountLOC(".", []string{
			"internal/core", "internal/loader", "internal/policy/liblink",
			"internal/policy/stackprot", "internal/policy/ifcc",
			"internal/secchan", "internal/x86",
		})
		if err != nil {
			b.Fatal(err)
		}
		total = loc
	}
	b.ReportMetric(float64(total), "loc")
}

//
// Ablation benchmarks (DESIGN.md §5).
//

// ablationClient builds a mid-size client for the ablation benches.
func ablationClient(b *testing.B, sp bool) []byte {
	b.Helper()
	bin, err := toolchain.Build(toolchain.Config{
		Name: "abl", Seed: 81, NumFuncs: 60, AvgFuncInsts: 200,
		LibcCallRate: 0.05, StackProtector: sp,
	})
	if err != nil {
		b.Fatal(err)
	}
	return bin.Image
}

// runCore provisions image under the given core config and returns the
// counter.
func runCore(b *testing.B, cfg core.Config, image []byte) *cycles.Counter {
	b.Helper()
	ctr := cycles.NewCounter(cycles.DefaultModel())
	cfg.Counter = ctr
	cfg.EPCPages = 8192
	cfg.HeapPages = 2500
	cfg.ClientPages = 512
	g, err := core.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	rep, err := g.Provision(image)
	if err != nil {
		b.Fatal(err)
	}
	if !rep.Compliant {
		b.Fatalf("rejected: %s", rep.Reason)
	}
	return ctr
}

// BenchmarkAblationMallocBatch quantifies the paper's §4 optimization:
// allocating the instruction buffer a page at a time instead of per
// instruction record. The per-record variant pays one OpenSGX trampoline
// (2 × 10K cycles) per instruction.
func BenchmarkAblationMallocBatch(b *testing.B) {
	image := ablationClient(b, false)
	b.Run("per-page", func(b *testing.B) {
		var cyc uint64
		for i := 0; i < b.N; i++ {
			ctr := runCore(b, core.Config{}, image)
			cyc = ctr.Cycles(cycles.PhaseDisasm)
		}
		b.ReportMetric(float64(cyc), "disasm-cycles")
	})
	b.Run("per-instruction", func(b *testing.B) {
		var cyc uint64
		for i := 0; i < b.N; i++ {
			ctr := runCore(b, core.Config{MallocPerInst: true}, image)
			cyc = ctr.Cycles(cycles.PhaseDisasm)
		}
		b.ReportMetric(float64(cyc), "disasm-cycles")
	})
}

// BenchmarkAblationBufferMode compares EnGarde's full instruction buffer
// against NaCl's sliding window (which could not support the policy
// modules, but bounds memory).
func BenchmarkAblationBufferMode(b *testing.B) {
	image := ablationClient(b, false)
	for _, mode := range []struct {
		name string
		m    core.BufferMode
	}{{"full-buffer", core.FullBuffer}, {"sliding-window", core.SlidingWindow}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			var heap uint64
			for i := 0; i < b.N; i++ {
				ctr := cycles.NewCounter(cycles.DefaultModel())
				g, err := core.New(core.Config{
					Counter: ctr, BufferMode: mode.m,
					EPCPages: 8192, HeapPages: 2500, ClientPages: 512,
				})
				if err != nil {
					b.Fatal(err)
				}
				rep, err := g.Provision(image)
				if err != nil {
					b.Fatal(err)
				}
				if !rep.Compliant {
					b.Fatalf("rejected: %s", rep.Reason)
				}
				heap = rep.HeapBytes
			}
			b.ReportMetric(float64(heap), "heap-bytes")
		})
	}
}

// BenchmarkAblationStackprotEarlyExit compares the paper-faithful
// exhaustive candidate scan against the early-exit optimization.
func BenchmarkAblationStackprotEarlyExit(b *testing.B) {
	spec, err := workload.ByName("401.bzip2") // the worst case: giant functions
	if err != nil {
		b.Fatal(err)
	}
	bin, err := spec.Build(workload.StackProtected)
	if err != nil {
		b.Fatal(err)
	}
	for _, variant := range []struct {
		name      string
		earlyExit bool
	}{{"exhaustive", false}, {"early-exit", true}} {
		variant := variant
		b.Run(variant.name, func(b *testing.B) {
			var cyc uint64
			for i := 0; i < b.N; i++ {
				mod := stackprot.New()
				mod.EarlyExit = variant.earlyExit
				ctr := cycles.NewCounter(cycles.DefaultModel())
				g, err := core.New(core.Config{
					Counter: ctr, Policies: policy.NewSet(mod),
					EPCPages: sgx.ModifiedEPCPages, HeapPages: sgx.ModifiedHeapPages, ClientPages: 1024,
				})
				if err != nil {
					b.Fatal(err)
				}
				rep, err := g.Provision(bin.Image)
				if err != nil {
					b.Fatal(err)
				}
				if !rep.Compliant {
					b.Fatalf("rejected: %s", rep.Reason)
				}
				cyc = ctr.Cycles(cycles.PhasePolicy)
			}
			b.ReportMetric(float64(cyc), "policy-cycles")
		})
	}
}

// BenchmarkAblationEPCPaging contrasts the paper's fix for EPC pressure
// (enlarge the emulated EPC, §4) with the OS alternative (demand-page it):
// same enclave, same client, reporting SGX-instruction counts. Paging
// keeps the stock 2000-page EPC but pays one 10K-cycle SGX instruction per
// EWB/ELDU.
func BenchmarkAblationEPCPaging(b *testing.B) {
	image := ablationClient(b, false)
	for _, mode := range []struct {
		name     string
		epcPages int
		paging   bool
	}{
		{"enlarged-epc(paper)", 8192, false},
		{"stock-epc+paging", sgx.DefaultEPCPages, true},
	} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			var sgxInstr uint64
			for i := 0; i < b.N; i++ {
				ctr := cycles.NewCounter(cycles.DefaultModel())
				g, err := core.New(core.Config{
					Counter: ctr, EPCPages: mode.epcPages,
					HeapPages: 2500, ClientPages: 512,
					EnableEPCPaging: mode.paging,
				})
				if err != nil {
					b.Fatal(err)
				}
				rep, err := g.Provision(image)
				if err != nil {
					b.Fatal(err)
				}
				if !rep.Compliant {
					b.Fatal(rep.Reason)
				}
				sgxInstr = ctr.Units(cycles.PhaseProvision, cycles.UnitSGXInstr) +
					ctr.Units(cycles.PhaseDisasm, cycles.UnitSGXInstr)
			}
			b.ReportMetric(float64(sgxInstr), "sgx-instrs")
		})
	}
}

// BenchmarkDisassemblerThroughput measures the real (wall-clock) decode
// rate of the NaCl-style disassembler on generated code.
func BenchmarkDisassemblerThroughput(b *testing.B) {
	bin, err := toolchain.Build(toolchain.Config{
		Name: "thr", Seed: 82, NumFuncs: 100, AvgFuncInsts: 200,
	})
	if err != nil {
		b.Fatal(err)
	}
	f, err := elf64.Parse(bin.Image)
	if err != nil {
		b.Fatal(err)
	}
	text := f.Section(".text")
	b.SetBytes(int64(len(text.Data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		insts, err := x86.DecodeAll(text.Data, text.Addr)
		if err != nil {
			b.Fatal(err)
		}
		if len(insts) != bin.NumInsts {
			b.Fatalf("decoded %d, want %d", len(insts), bin.NumInsts)
		}
	}
}

// BenchmarkProvisionWallClock measures real end-to-end provisioning time
// (not model cycles) for a small client — the only latency EnGarde ever
// adds, since it imposes zero runtime overhead after provisioning.
func BenchmarkProvisionWallClock(b *testing.B) {
	image := ablationClient(b, false)
	for i := 0; i < b.N; i++ {
		g, err := core.New(core.Config{EPCPages: 8192, HeapPages: 2500, ClientPages: 512})
		if err != nil {
			b.Fatal(err)
		}
		rep, err := g.Provision(image)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Compliant {
			b.Fatal(rep.Reason)
		}
	}
}

// BenchmarkParallelPipeline measures the wall-clock effect of sharding the
// two check phases — disassembly (decode + bundle + branch-target passes)
// and policy evaluation (all four modules) — over a large client, at 1, 2,
// 4 and 8 workers. Worker count 1 is the sequential baseline; the model
// cycle totals are identical at every count (asserted by the differential
// tests), so this benchmark isolates the real-time speedup.
func BenchmarkParallelPipeline(b *testing.B) {
	bin, err := toolchain.Build(toolchain.Config{
		Name: "par", Seed: 83, NumFuncs: 120, AvgFuncInsts: 220,
		LibcCallRate: 0.05, StackProtector: true, IFCC: true, IndirectRate: 0.02,
	})
	if err != nil {
		b.Fatal(err)
	}
	f, err := elf64.Parse(bin.Image)
	if err != nil {
		b.Fatal(err)
	}
	text := f.TextSections()[0]
	tab, err := symtab.FromELF(f)
	if err != nil {
		b.Fatal(err)
	}
	// The client is stack-protected, so the approved-library database must
	// come from the canary-instrumented musl build.
	db, err := toolchain.MuslHashDB(toolchain.MuslV105, true)
	if err != nil {
		b.Fatal(err)
	}
	pols := policy.NewSet(noforbidden.New(), liblink.New("musl-1.0.5", db),
		stackprot.New(), ifcc.New())
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			b.SetBytes(int64(len(text.Data)))
			for i := 0; i < b.N; i++ {
				ctr := cycles.NewCounter(cycles.DefaultModel())
				prog, err := nacl.DecodeProgramParallel(text.Data, text.Addr, ctr, workers)
				if err != nil {
					b.Fatal(err)
				}
				if err := prog.CheckReachability(f.Header.Entry, tab); err != nil {
					b.Fatal(err)
				}
				pctx := &policy.Context{Program: prog, Symbols: tab, Counter: ctr}
				if err := pols.CheckParallel(pctx, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGatewayThroughput measures end-to-end sessions/sec through the
// gateway serving layer — full protocol (attestation, key exchange,
// encrypted transfer) per session, 4 concurrent clients:
//
//	cold      — byte-distinct images, cache disabled: every session pays
//	            disassembly + policy checking.
//	cache-hit — one image, cache warm after the first session: the checks
//	            are skipped, only load + protocol remain.
//
// The ratio between the two is the amortization the verdict cache buys a
// provider serving repeated tenant binaries.
func BenchmarkGatewayThroughput(b *testing.B) {
	coldImages, err := bench.DistinctImages(8)
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, cfg bench.GatewayLoadConfig) {
		cfg.Sessions = b.N
		res, err := bench.RunGatewayLoad(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.SessionsPerSec, "sessions/s")
		b.ReportMetric(res.Stats.CacheHitRate, "hit-rate")
	}
	b.Run("cold", func(b *testing.B) {
		run(b, bench.GatewayLoadConfig{Images: coldImages, CacheEntries: -1})
	})
	// The seq/par8 pair isolates the parallel pipeline's effect on cold
	// sessions: identical load, workers pinned to 1 vs 8.
	b.Run("cold-seq", func(b *testing.B) {
		run(b, bench.GatewayLoadConfig{Images: coldImages, CacheEntries: -1,
			DisasmWorkers: 1, PolicyWorkers: 1})
	})
	b.Run("cold-par8", func(b *testing.B) {
		run(b, bench.GatewayLoadConfig{Images: coldImages, CacheEntries: -1,
			DisasmWorkers: 8, PolicyWorkers: 8})
	})
	b.Run("cache-hit", func(b *testing.B) {
		run(b, bench.GatewayLoadConfig{Images: coldImages[:1]})
	})
	// Byte-distinct images never hit the verdict cache, but they share the
	// approved musl build, so the function-result cache absorbs most of
	// each session's policy work after the first.
	b.Run("fn-warm", func(b *testing.B) {
		run(b, bench.GatewayLoadConfig{Images: coldImages, CacheEntries: -1,
			FnCacheEntries: 1 << 16})
	})
}

// BenchmarkPooledProvision measures enclave acquisition — the cost pooling
// removes from the session path:
//
//	fresh   — the measured build (ECREATE + EADD/EEXTEND of every page +
//	          EINIT + RSA keygen), what every session paid before pooling.
//	clone   — snapshot restore into fresh EPC slots + fresh keygen, what a
//	          pool refill worker pays per enclave.
//	recycle — in-place scrub back to the snapshot + fresh keygen, what a
//	          returned enclave costs to re-pool.
//
// The fresh/clone ratio is the per-enclave creation speedup the warm pool
// converts into admit→attest latency (BENCH_7.json's pooled point).
func BenchmarkPooledProvision(b *testing.B) {
	const heapPages, clientPages = 1500, 512
	cfg := core.Config{EPCPages: 16384, HeapPages: heapPages, ClientPages: clientPages}
	b.Run("fresh", func(b *testing.B) {
		dev, err := sgx.NewDevice(sgx.Config{EPCPages: 16384, Version: sgx.V2})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g, err := core.NewOnDevice(cfg, dev)
			if err != nil {
				b.Fatal(err)
			}
			g.Destroy()
		}
	})
	b.Run("clone", func(b *testing.B) {
		dev, err := sgx.NewDevice(sgx.Config{EPCPages: 16384, Version: sgx.V2})
		if err != nil {
			b.Fatal(err)
		}
		snap, err := core.NewSnapshotter(cfg, dev)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g, err := snap.Clone(nil)
			if err != nil {
				b.Fatal(err)
			}
			g.Destroy()
		}
	})
	b.Run("recycle", func(b *testing.B) {
		dev, err := sgx.NewDevice(sgx.Config{EPCPages: 16384, Version: sgx.V2})
		if err != nil {
			b.Fatal(err)
		}
		snap, err := core.NewSnapshotter(cfg, dev)
		if err != nil {
			b.Fatal(err)
		}
		g, err := snap.Clone(nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g, err = snap.Recycle(g)
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkWarmProvision measures warm-path provisioning: the same image
// is provisioned fully cold and against a function-result cache warmed by
// a different image sharing the approved musl build. The cycle metrics are
// the paper-model policy-phase cost; allocs/op contrasts the two paths'
// real allocation behaviour.
func BenchmarkWarmProvision(b *testing.B) {
	w, err := bench.NewWarmBench(bench.WarmPathConfig{DisasmWorkers: 1, PolicyWorkers: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	for _, mode := range []string{"cold", "warm"} {
		b.Run(mode, func(b *testing.B) {
			b.ReportAllocs()
			var pt bench.WarmPathPoint
			for i := 0; i < b.N; i++ {
				var err error
				pt, err = w.Provision(mode == "warm")
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(pt.PolicyCycles), "policy-cycles")
			b.ReportMetric(float64(pt.CachedFunctions), "fn-reused")
		})
	}
}
