// Remote attestation: the full EnGarde provisioning protocol over a real
// TCP connection, including the checks that make it mutually trusted:
//
//   - the client verifies the quote's signature chain (platform key),
//     the enclave measurement (genuine EnGarde bootstrap), and the binding
//     of the enclave's ephemeral RSA key into the quote;
//
//   - a simulated man-in-the-middle that substitutes its own RSA key is
//     detected before any content leaves the client.
//
//     go run ./examples/remote-attestation
package main

import (
	"fmt"
	"log"
	"net"

	"engarde"
	"engarde/internal/attest"
	"engarde/internal/secchan"
	"engarde/internal/toolchain"
)

func main() {
	provider, err := engarde.NewProvider(engarde.ProviderConfig{})
	if err != nil {
		log.Fatal(err)
	}
	cfg := engarde.EnclaveConfig{HeapPages: 2500, ClientPages: 512,
		Policies: engarde.NewPolicySet()}
	enclave, err := provider.CreateEnclave(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Both parties can compute the expected measurement from the EnGarde
	// code they inspected.
	expected, err := engarde.ExpectedMeasurement(engarde.SGXv2,
		engarde.EnclaveConfig{HeapPages: 2500, ClientPages: 512})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("expected MRENCLAVE: %x\n", expected[:])

	bin, err := toolchain.Build(toolchain.Config{
		Name: "attested", Seed: 5, NumFuncs: 6, AvgFuncInsts: 50,
	})
	if err != nil {
		log.Fatal(err)
	}

	// --- Honest run over TCP -------------------------------------------
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		if _, err := enclave.ServeProvision(conn); err != nil {
			log.Println("server:", err)
		}
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	client := &engarde.Client{Expected: expected, PlatformKey: provider.AttestationPublicKey()}
	verdict, err := client.Provision(conn, bin.Image)
	conn.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("honest provider: compliant=%v\n", verdict.Compliant)

	// --- Man-in-the-middle run -----------------------------------------
	// The MITM forwards the genuine quote but substitutes its own RSA key,
	// hoping the client encrypts the session key to it. The quote binds
	// the genuine enclave key, so verification fails.
	mitmDetected := demonstrateMITM(provider, expected)
	fmt.Printf("man-in-the-middle substituting the channel key: detected=%v\n", mitmDetected)
	if !mitmDetected {
		log.Fatal("MITM was NOT detected — protocol broken")
	}
}

func demonstrateMITM(provider *engarde.Provider, expected engarde.Measurement) bool {
	enclave, err := provider.CreateEnclave(engarde.EnclaveConfig{HeapPages: 2500, ClientPages: 512})
	if err != nil {
		log.Fatal(err)
	}
	quote, err := enclave.Quote()
	if err != nil {
		log.Fatal(err)
	}
	// The attacker generates its own key pair and presents it with the
	// genuine quote.
	mitmKey, err := secchan.GenerateEnclaveKey(nil)
	if err != nil {
		log.Fatal(err)
	}
	mitmPub, err := mitmKey.PublicDER()
	if err != nil {
		log.Fatal(err)
	}
	err = attest.VerifyQuote(quote, provider.AttestationPublicKey(), expected, attest.BindPublicKey(mitmPub))
	return err != nil
}
