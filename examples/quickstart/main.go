// Quickstart: create an EnGarde enclave, agree on a policy, provision a
// client executable, and transfer control — all in-process.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"engarde"
	"engarde/internal/cycles"
	"engarde/internal/toolchain"
)

func main() {
	// The provider boots its SGX platform (quoting enclave included).
	provider, err := engarde.NewProvider(engarde.ProviderConfig{})
	if err != nil {
		log.Fatal(err)
	}

	// Provider and client agree on a policy: all code must carry
	// -fstack-protector-all instrumentation.
	policies := engarde.NewPolicySet(engarde.StackProtectorPolicy())

	// The provider creates a fresh enclave provisioned with the EnGarde
	// bootstrap and those policy modules.
	enclave, err := provider.CreateEnclave(engarde.EnclaveConfig{
		Policies:  policies,
		HeapPages: 2500, ClientPages: 512,
	})
	if err != nil {
		log.Fatal(err)
	}
	m := enclave.Measurement()
	fmt.Printf("enclave created, MRENCLAVE = %x…\n", m[:8])

	// The client compiles its application with the agreed instrumentation
	// (here: the synthetic toolchain standing in for clang -fstack-protector-all).
	bin, err := toolchain.Build(toolchain.Config{
		Name: "myapp", Seed: 1,
		NumFuncs: 10, AvgFuncInsts: 80,
		LibcCallRate:   0.05,
		StackProtector: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("client binary: %d instructions, %d bytes of text\n", bin.NumInsts, bin.TextSize)

	// EnGarde inspects and (if compliant) loads it.
	report, err := enclave.Provision(bin.Image)
	if err != nil {
		log.Fatal(err)
	}
	if !report.Compliant {
		log.Fatalf("rejected: %s", report.Reason)
	}
	fmt.Printf("policy-compliant ✓ (%d instructions checked)\n", report.NumInsts)
	fmt.Printf("executable pages: %d, writable pages: %d\n", len(report.ExecPages), len(report.DataPages))
	for _, phase := range []cycles.Phase{cycles.PhaseDisasm, cycles.PhasePolicy, cycles.PhaseLoad} {
		fmt.Printf("  %-24s %12d cycles (%.2f ms at 3.5 GHz)\n",
			phase, report.Phases[phase], cycles.Milliseconds(report.Phases[phase]))
	}

	// Control transfer: from here on, EnGarde imposes zero overhead.
	entry, err := enclave.Enter()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("control transferred to client code at %#x\n", entry)
}
