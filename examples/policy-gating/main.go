// Policy gating: the SLA-compliance scenario of the paper's introduction.
// The provider demands the full agreed policy set (approved musl build +
// stack protection + IFCC); a series of client binaries — compliant,
// missing instrumentation, linked against the wrong libc version, stripped,
// or with data smuggled into code pages — are submitted, and EnGarde's
// verdicts are tabulated.
//
//	go run ./examples/policy-gating
package main

import (
	"fmt"
	"log"

	"engarde"
	"engarde/internal/toolchain"
)

type attempt struct {
	name   string
	cfg    toolchain.Config
	expect bool // expected verdict
}

func main() {
	musl, err := engarde.MuslLinkingPolicy(engarde.MuslApprovedVersion, true)
	if err != nil {
		log.Fatal(err)
	}
	policies := engarde.NewPolicySet(musl, engarde.StackProtectorPolicy(), engarde.IFCCPolicy())

	provider, err := engarde.NewProvider(engarde.ProviderConfig{})
	if err != nil {
		log.Fatal(err)
	}

	base := toolchain.Config{
		Name: "tenant", Seed: 9,
		NumFuncs: 10, AvgFuncInsts: 70,
		LibcCallRate: 0.05, IndirectRate: 0.02,
		StackProtector: true, IFCC: true,
	}

	attempts := []attempt{
		{name: "fully instrumented (compliant)", cfg: base, expect: true},
		{name: "missing stack protector", cfg: with(base, func(c *toolchain.Config) { c.StackProtector = false }), expect: false},
		{name: "missing IFCC guards", cfg: with(base, func(c *toolchain.Config) { c.IFCC = false }), expect: false},
		{name: "linked against musl " + toolchain.MuslV110, cfg: with(base, func(c *toolchain.Config) { c.MuslVersion = toolchain.MuslV110 }), expect: false},
		{name: "stripped symbol table", cfg: with(base, func(c *toolchain.Config) { c.Strip = true }), expect: false},
		{name: "data mixed into code pages", cfg: with(base, func(c *toolchain.Config) { c.MixedCodeData = true }), expect: false},
	}

	fmt.Printf("%-38s %-10s %s\n", "client submission", "verdict", "reason")
	allAsExpected := true
	for _, a := range attempts {
		enclave, err := provider.CreateEnclave(engarde.EnclaveConfig{
			Policies: policies, HeapPages: 2500, ClientPages: 512,
		})
		if err != nil {
			log.Fatal(err)
		}
		bin, err := toolchain.Build(a.cfg)
		if err != nil {
			log.Fatal(err)
		}
		report, err := enclave.Provision(bin.Image)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "REJECTED"
		if report.Compliant {
			verdict = "ACCEPTED"
		}
		fmt.Printf("%-38s %-10s %s\n", a.name, verdict, truncate(report.Reason, 70))
		if report.Compliant != a.expect {
			allAsExpected = false
		}
	}
	if !allAsExpected {
		log.Fatal("some verdicts did not match expectations")
	}
	fmt.Println("\nall verdicts as expected ✓")
}

func with(c toolchain.Config, mutate func(*toolchain.Config)) toolchain.Config {
	mutate(&c)
	return c
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
