// Runtime canary: execute provisioned client code inside the emulated
// enclave (an extension beyond the paper's static-only prototype) and
// watch the instrumentation that the Figure-4 policy verified statically
// actually defend at runtime:
//
//  1. a stack-protected client is provisioned and executed — it runs to
//     completion and never reaches __stack_chk_fail;
//
//  2. the canary is corrupted mid-run (as a stack-smashing bug would) —
//     the very next protected epilogue diverts to __stack_chk_fail.
//
//     go run ./examples/runtime-canary
package main

import (
	"fmt"
	"log"

	"engarde"
	"engarde/internal/core"
	"engarde/internal/elf64"
	"engarde/internal/interp"
	"engarde/internal/symtab"
	"engarde/internal/toolchain"
)

func main() {
	bin, err := toolchain.Build(toolchain.Config{
		Name: "guarded", Seed: 33,
		NumFuncs: 6, AvgFuncInsts: 50,
		LibcCallRate:   0.04,
		StackProtector: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Find __stack_chk_fail so we can watch for it at runtime.
	f, err := elf64.Parse(bin.Image)
	if err != nil {
		log.Fatal(err)
	}
	tab, err := symtab.FromELF(f)
	if err != nil {
		log.Fatal(err)
	}
	failStatic, _ := tab.AddrOf("__stack_chk_fail")

	provider, err := engarde.NewProvider(engarde.ProviderConfig{})
	if err != nil {
		log.Fatal(err)
	}
	policies := engarde.NewPolicySet(engarde.StackProtectorPolicy())

	// --- Run 1: intact canary --------------------------------------------
	g1 := provision(provider, policies, bin.Image)
	failAddr := g1.LoadResult().Bias + failStatic
	cpu, err := g1.NewCPU()
	if err != nil {
		log.Fatal(err)
	}
	cpu.Breakpoints[failAddr] = true
	reason, err := cpu.Run(200_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("run 1 (intact canary):    %d instructions, stopped by %v — __stack_chk_fail never reached\n",
		cpu.Steps, reason)
	if reason == interp.StopBreakpoint {
		log.Fatal("unexpected canary failure")
	}

	// --- Run 2: corrupted canary -----------------------------------------
	g2 := provision(provider, policies, bin.Image)
	failAddr = g2.LoadResult().Bias + failStatic
	cpu2, err := g2.NewCPU()
	if err != nil {
		log.Fatal(err)
	}
	cpu2.Breakpoints[failAddr] = true
	if _, err := cpu2.Run(150); err != nil { // let canaries go live
		log.Fatal(err)
	}
	// Smash the canary (what a stack-overflow write would achieve).
	corrupt := []byte{0xFF, 0xEE, 0xDD, 0xCC, 0xBB, 0xAA, 0x99, 0x88}
	if err := g2.Enclave().Write(g2.LoadResult().TLSBase+core.CanaryTLSOffset, corrupt); err != nil {
		log.Fatal(err)
	}
	reason2, err := cpu2.Run(200_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("run 2 (corrupted canary): stopped by %v at %#x", reason2, cpu2.RIP)
	if reason2 == interp.StopBreakpoint && cpu2.RIP == failAddr {
		fmt.Println(" — __stack_chk_fail ✓ (attack caught by the instrumentation)")
	} else {
		fmt.Println()
		log.Fatal("corruption was not detected")
	}
}

func provision(provider *engarde.Provider, policies *engarde.PolicySet, image []byte) *core.EnGarde {
	enclave, err := provider.CreateEnclave(engarde.EnclaveConfig{
		Policies: policies, HeapPages: 2500, ClientPages: 512,
	})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := enclave.Provision(image)
	if err != nil {
		log.Fatal(err)
	}
	if !rep.Compliant {
		log.Fatalf("rejected: %s", rep.Reason)
	}
	return enclave.Core()
}
