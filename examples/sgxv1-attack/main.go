// SGXv1 attack demo: why EnGarde requires SGX version 2 (paper §3).
//
// On SGXv1 hardware, EPC page permissions cannot be changed at the
// hardware level, so EnGarde's W^X lock on provisioned code pages lives
// only in the host's page tables — which the host OS itself controls. A
// malicious or compromised host can flip the writable bit back after the
// policy check and inject code (the AsyncShock-style attack, [39] in the
// paper). On SGXv2, the EPCM enforces the restricted permissions on every
// enclave access, so the same attack fails.
//
//	go run ./examples/sgxv1-attack
package main

import (
	"fmt"
	"log"

	"engarde"
	"engarde/internal/hostos"
	"engarde/internal/toolchain"
)

func main() {
	bin, err := toolchain.Build(toolchain.Config{
		Name: "victim", Seed: 21, NumFuncs: 6, AvgFuncInsts: 50,
	})
	if err != nil {
		log.Fatal(err)
	}

	for _, version := range []engarde.SGXVersion{engarde.SGXv1, engarde.SGXv2} {
		fmt.Printf("=== %v ===\n", version)
		injected := attemptInjection(version, bin.Image)
		if injected {
			fmt.Println("ATTACK SUCCEEDED: host rewrote a checked code page after provisioning")
		} else {
			fmt.Println("attack blocked: EPCM denies the write regardless of page tables")
		}
		fmt.Println()
		if version == engarde.SGXv1 && !injected {
			log.Fatal("expected the attack to succeed on SGXv1")
		}
		if version == engarde.SGXv2 && injected {
			log.Fatal("expected the attack to fail on SGXv2")
		}
	}
	fmt.Println("conclusion: EnGarde's post-check code-injection lock is binding only on SGXv2 (paper §3)")
}

// attemptInjection provisions the binary and then plays the malicious
// host: flip the page-table permissions of the first provisioned code page
// back to writable and try to overwrite the checked code.
func attemptInjection(version engarde.SGXVersion, image []byte) bool {
	provider, err := engarde.NewProvider(engarde.ProviderConfig{Version: version})
	if err != nil {
		log.Fatal(err)
	}
	enclave, err := provider.CreateEnclave(engarde.EnclaveConfig{
		HeapPages: 2500, ClientPages: 512,
	})
	if err != nil {
		log.Fatal(err)
	}
	report, err := enclave.Provision(image)
	if err != nil {
		log.Fatal(err)
	}
	if !report.Compliant {
		log.Fatalf("unexpected rejection: %s", report.Reason)
	}
	codePage := report.ExecPages[0]
	g := enclave.Core()

	// Sanity: with EnGarde's W^X in place, the write faults on both
	// versions.
	if err := g.Process().EnclaveWrite(g.Enclave(), codePage, []byte{0xCC}); err == nil {
		log.Fatal("W^X not in effect immediately after provisioning")
	}
	fmt.Printf("provisioned: %d exec pages locked r-x; direct write correctly faults\n", len(report.ExecPages))

	// The malicious host flips its own page tables.
	if err := g.Process().AS.Protect(codePage, hostos.PermR|hostos.PermW|hostos.PermX); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("malicious host flipped PTE of %#x to rwx\n", codePage)

	// Injection attempt: write an int3 over checked code.
	err = g.Process().EnclaveWrite(g.Enclave(), codePage, []byte{0xCC})
	return err == nil
}
