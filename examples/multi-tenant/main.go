// Multi-tenant: one provider platform hosting several clients
// concurrently, each with its own enclave, its own negotiated policy set,
// and its own encrypted channel — the deployment shape the paper's
// introduction motivates. Tenants provision in parallel over TCP.
//
//	go run ./examples/multi-tenant
package main

import (
	"fmt"
	"log"
	"net"
	"sync"

	"engarde"
	"engarde/internal/toolchain"
)

type tenant struct {
	name     string
	policies []string // names for display
	set      *engarde.PolicySet
	cfg      toolchain.Config
}

func main() {
	provider, err := engarde.NewProvider(engarde.ProviderConfig{})
	if err != nil {
		log.Fatal(err)
	}
	expected, err := engarde.ExpectedMeasurement(engarde.SGXv2,
		engarde.EnclaveConfig{HeapPages: 2500, ClientPages: 512})
	if err != nil {
		log.Fatal(err)
	}

	musl, err := engarde.MuslLinkingPolicy(engarde.MuslApprovedVersion, false)
	if err != nil {
		log.Fatal(err)
	}

	tenants := []tenant{
		{
			name:     "web-frontend",
			policies: []string{"stack-protector"},
			set:      engarde.NewPolicySet(engarde.StackProtectorPolicy()),
			cfg: toolchain.Config{Name: "webfe", Seed: 11, NumFuncs: 12,
				AvgFuncInsts: 70, LibcCallRate: 0.05, StackProtector: true},
		},
		{
			name:     "kv-cache",
			policies: []string{"ifcc"},
			set:      engarde.NewPolicySet(engarde.IFCCPolicy()),
			cfg: toolchain.Config{Name: "kv", Seed: 12, NumFuncs: 10,
				AvgFuncInsts: 60, IndirectRate: 0.02, IFCC: true},
		},
		{
			name:     "batch-analytics",
			policies: []string{"musl"},
			set:      engarde.NewPolicySet(musl),
			cfg: toolchain.Config{Name: "batch", Seed: 13, NumFuncs: 8,
				AvgFuncInsts: 90, LibcCallRate: 0.06},
		},
	}

	var wg sync.WaitGroup
	results := make([]string, len(tenants))
	for i, tn := range tenants {
		i, tn := i, tn
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i] = runTenant(provider, expected, tn)
		}()
	}
	wg.Wait()

	fmt.Printf("%-18s %s\n", "tenant", "outcome")
	for i, tn := range tenants {
		fmt.Printf("%-18s %s\n", tn.name, results[i])
	}
	fmt.Printf("\nEPC remaining on the shared platform: %d of %d pages\n",
		provider.Device().EPCFree(), provider.Device().EPCCapacity())
}

func runTenant(provider *engarde.Provider, expected engarde.Measurement, tn tenant) string {
	enclave, err := provider.CreateEnclave(engarde.EnclaveConfig{
		Policies: tn.set, HeapPages: 2500, ClientPages: 512,
	})
	if err != nil {
		return "enclave creation failed: " + err.Error()
	}
	bin, err := toolchain.Build(tn.cfg)
	if err != nil {
		return "build failed: " + err.Error()
	}

	// Each tenant provisions over its own socket.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err.Error()
	}
	defer ln.Close()
	done := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		_, err = enclave.ServeProvision(conn)
		done <- err
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		return err.Error()
	}
	defer conn.Close()
	client := &engarde.Client{Expected: expected, PlatformKey: provider.AttestationPublicKey()}
	verdict, err := client.Provision(conn, bin.Image)
	if err != nil {
		return "protocol error: " + err.Error()
	}
	if serveErr := <-done; serveErr != nil {
		return "server error: " + serveErr.Error()
	}
	if !verdict.Compliant {
		return fmt.Sprintf("REJECTED under %v: %s", tn.policies, verdict.Reason)
	}
	if _, err := enclave.Enter(); err != nil {
		return "enter failed: " + err.Error()
	}
	return fmt.Sprintf("ACCEPTED under %v, running", tn.policies)
}
